// Package service is the engine-resident serving layer of the quarc
// reproduction: a content-addressed result cache, singleflight
// deduplication and a bounded worker pool in front of the noc
// evaluators. One long-lived Evaluator serves many declarative noc.Spec
// requests (the quarcd daemon's backend), with three layers of reuse:
//
//   - identical specs (same canonical encoding) hit the LRU Result cache
//     and never evaluate twice;
//   - identical specs in flight at the same time coalesce onto one
//     evaluation (singleflight);
//   - structurally identical specs (same topology/pattern/spatial
//     sub-spec) share one compiled base scenario, so workers reuse
//     routing tables and their pooled wormhole networks across requests,
//     exactly like a noc.Sweep worker does across points.
//
// Every response is bitwise-identical to evaluating the spec cold with
// noc.Simulator/noc.Model directly — caching and pooling are pure
// memoization (pinned by the package tests).
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"quarc/noc"
)

// Sentinel errors; match with errors.Is.
var (
	// ErrClosed reports an Evaluate/Sweep call against a Close()d
	// evaluator.
	ErrClosed = errors.New("service: evaluator is closed")
	// ErrTraceSpec rejects specs that ask for trace record/replay: both
	// resolve file paths on the server, which a network-facing service
	// must not do on a client's behalf.
	ErrTraceSpec = errors.New("service: trace record/replay specs are not servable")
)

// maxSweepPoints bounds one sweep request's rate grid.
const maxSweepPoints = 1024

// Config sizes an Evaluator. The zero value selects the defaults.
type Config struct {
	// CacheEntries bounds the Result cache (default 1024 entries).
	CacheEntries int
	// ScenarioEntries bounds the compiled base-scenario cache (default
	// 64 entries).
	ScenarioEntries int
	// Workers bounds the concurrent evaluations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job buffer (default 4*Workers).
	// Submitters past it block until a worker frees up or their context
	// expires.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.ScenarioEntries <= 0 {
		c.ScenarioEntries = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	return c
}

// Source reports how a response was produced.
type Source string

const (
	// SourceComputed means this request ran the evaluation.
	SourceComputed Source = "computed"
	// SourceCache means the Result came from the content-addressed cache.
	SourceCache Source = "cache"
	// SourceCoalesced means the request joined an identical in-flight
	// evaluation (singleflight).
	SourceCoalesced Source = "coalesced"
)

// Stats is a point-in-time snapshot of the evaluator's counters.
type Stats struct {
	// Hits/Misses/Coalesced classify Evaluate calls: cache hit, cold
	// evaluation started, joined an in-flight evaluation.
	Hits      uint64 `json:"cache_hits"`
	Misses    uint64 `json:"cache_misses"`
	Coalesced uint64 `json:"coalesced"`
	// Evaluations counts evaluations actually executed by the pool;
	// Evictions counts cache entries dropped by the LRU bound.
	Evaluations uint64 `json:"evaluations"`
	Evictions   uint64 `json:"evictions"`
	// CachedResults/CachedScenarios/InFlight are current occupancy.
	CachedResults   int `json:"cached_results"`
	CachedScenarios int `json:"cached_scenarios"`
	InFlight        int `json:"in_flight"`
	// Workers echoes the pool size.
	Workers int `json:"workers"`
}

// flight is one in-progress evaluation; waiters block on done.
type flight struct {
	done chan struct{}
	res  noc.Result
	err  error
}

// job is one queued evaluation.
type job struct {
	key string
	sp  noc.Spec
	f   *flight
}

// Evaluator is the engine-resident serving core. It is safe for
// concurrent use by any number of goroutines.
type Evaluator struct {
	cfg  Config
	jobs chan job
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	mu      sync.Mutex
	results *lruCache[noc.Result]
	bases   *lruCache[*noc.Scenario]
	flights map[string]*flight

	hits, misses, coalesced atomic.Uint64
	evaluations, evictions  atomic.Uint64
}

// New starts an evaluator with cfg.Workers resident workers, each owning
// a pooled Simulator fork. Close it when done.
func New(cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	e := &Evaluator{
		cfg:     cfg,
		jobs:    make(chan job, cfg.QueueDepth),
		done:    make(chan struct{}),
		results: newLRU[noc.Result](cfg.CacheEntries),
		bases:   newLRU[*noc.Scenario](cfg.ScenarioEntries),
		flights: make(map[string]*flight),
	}
	for w := 0; w < cfg.Workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Close stops the workers (after their current evaluations finish) and
// fails any jobs still queued with ErrClosed. It is idempotent.
func (e *Evaluator) Close() {
	e.once.Do(func() {
		close(e.done)
		e.wg.Wait()
		for {
			select {
			case j := <-e.jobs:
				e.resolve(j, noc.Result{}, ErrClosed)
			default:
				return
			}
		}
	})
}

// Stats returns a snapshot of the counters.
func (e *Evaluator) Stats() Stats {
	e.mu.Lock()
	cachedResults, cachedScenarios, inFlight := e.results.len(), e.bases.len(), len(e.flights)
	e.mu.Unlock()
	return Stats{
		Hits:            e.hits.Load(),
		Misses:          e.misses.Load(),
		Coalesced:       e.coalesced.Load(),
		Evaluations:     e.evaluations.Load(),
		Evictions:       e.evictions.Load(),
		CachedResults:   cachedResults,
		CachedScenarios: cachedScenarios,
		InFlight:        inFlight,
		Workers:         e.cfg.Workers,
	}
}

// Evaluate serves one spec: from the cache when its canonical encoding
// was evaluated before, by joining an identical in-flight evaluation, or
// by scheduling a fresh evaluation on the worker pool. The returned
// Source says which; cached and cold responses for the same spec are
// bitwise identical.
func (e *Evaluator) Evaluate(ctx context.Context, sp noc.Spec) (noc.Result, Source, error) {
	if err := sp.Validate(); err != nil {
		return noc.Result{}, "", err
	}
	if sp.Record != "" || sp.Replay != "" {
		return noc.Result{}, "", ErrTraceSpec
	}
	cjson, err := sp.CanonicalJSON()
	if err != nil {
		return noc.Result{}, "", fmt.Errorf("service: encoding spec: %w", err)
	}
	key := string(cjson)

	e.mu.Lock()
	if res, ok := e.results.get(key); ok {
		e.mu.Unlock()
		e.hits.Add(1)
		return res, SourceCache, nil
	}
	if f, ok := e.flights[key]; ok {
		e.mu.Unlock()
		e.coalesced.Add(1)
		res, err := e.wait(ctx, f)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The submitting caller gave up before its job reached the
			// queue and failed the shared flight with its own context
			// error; ours is still live, so take over with a fresh
			// attempt instead of propagating a foreign cancellation.
			return e.Evaluate(ctx, sp)
		}
		return res, SourceCoalesced, err
	}
	f := &flight{done: make(chan struct{})}
	e.flights[key] = f
	e.mu.Unlock()
	e.misses.Add(1)

	select {
	case e.jobs <- job{key: key, sp: sp, f: f}:
	case <-ctx.Done():
		e.resolve(job{key: key, f: f}, noc.Result{}, ctx.Err())
		return noc.Result{}, "", ctx.Err()
	case <-e.done:
		e.resolve(job{key: key, f: f}, noc.Result{}, ErrClosed)
		return noc.Result{}, "", ErrClosed
	}
	res, err := e.wait(ctx, f)
	return res, SourceComputed, err
}

// Sweep evaluates the spec across a rate grid on the shared pool — one
// content-addressed job per rate, so repeated and overlapping sweeps
// deduplicate point-wise. Results are returned in rate order.
func (e *Evaluator) Sweep(ctx context.Context, sp noc.Spec, rates []float64) ([]noc.Result, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("%w: a sweep needs at least one rate", noc.ErrInvalidSpec)
	}
	if len(rates) > maxSweepPoints {
		return nil, fmt.Errorf("%w: %d sweep points exceed the %d-point bound", noc.ErrInvalidSpec, len(rates), maxSweepPoints)
	}
	for _, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return nil, fmt.Errorf("%w: invalid sweep rate %v", noc.ErrInvalidSpec, r)
		}
	}
	results := make([]noc.Result, len(rates))
	errs := make([]error, len(rates))
	var wg sync.WaitGroup
	for i, r := range rates {
		pt := sp
		pt.Rate = r
		wg.Add(1)
		go func(i int, pt noc.Spec) {
			defer wg.Done()
			results[i], _, errs[i] = e.Evaluate(ctx, pt)
		}(i, pt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("service: sweep point rate=%g: %w", rates[i], err)
		}
	}
	return results, nil
}

// wait blocks until the flight resolves, the caller's context expires or
// the evaluator closes. An abandoned flight still completes and caches
// its result for the next request.
func (e *Evaluator) wait(ctx context.Context, f *flight) (noc.Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return noc.Result{}, ctx.Err()
	case <-e.done:
		// The pool is shutting down; the flight may never run. Give a
		// resolved flight precedence over the shutdown signal.
		select {
		case <-f.done:
			return f.res, f.err
		default:
			return noc.Result{}, ErrClosed
		}
	}
}

// resolve publishes a flight's outcome (caching successes) and wakes its
// waiters.
func (e *Evaluator) resolve(j job, res noc.Result, err error) {
	e.mu.Lock()
	if err == nil {
		e.evictions.Add(uint64(e.results.add(j.key, res)))
	}
	delete(e.flights, j.key)
	e.mu.Unlock()
	j.f.res, j.f.err = res, err
	close(j.f.done)
}

// worker is one resident evaluation loop. Each worker owns a pooled
// Simulator fork, so consecutive jobs that share a base scenario reuse
// one wormhole network via its in-place Reset (the PR 2/3 hot path).
func (e *Evaluator) worker() {
	defer e.wg.Done()
	sim := noc.NewPooledSimulator()
	for {
		select {
		case <-e.done:
			return
		case j := <-e.jobs:
			res, err := e.evaluateSpec(j.sp, sim)
			e.evaluations.Add(1)
			e.resolve(j, res, err)
		}
	}
}

// evaluateSpec compiles and runs one spec on this worker. Compilation
// goes through the shared base-scenario cache: the spec's structural
// sub-spec (topology, pattern, spatial) resolves to one base Scenario
// reused by every structurally identical request, and the tuning options
// are layered on top with Scenario.With — bitwise-identical to a cold
// Spec.Scenario build. Replications run serially inside the worker
// (Parallelism(1)), so the pool's Workers bound is the only concurrency;
// the aggregate is bitwise-independent of that choice.
func (e *Evaluator) evaluateSpec(sp noc.Spec, sim noc.Evaluator) (noc.Result, error) {
	base, err := e.baseFor(sp)
	if err != nil {
		return noc.Result{}, err
	}
	s, err := sp.ScenarioWith(base)
	if err != nil {
		return noc.Result{}, err
	}
	if s, err = s.With(noc.Parallelism(1)); err != nil {
		return noc.Result{}, err
	}
	if sp.Canonical().Evaluator == "model" {
		return noc.Model{}.Evaluate(s)
	}
	return sim.Evaluate(s)
}

// baseFor returns the shared compiled scenario for the spec's structural
// sub-spec, compiling and caching it on first use. Two workers racing on
// a cold key may compile twice; the cache keeps one and both builds are
// equivalent, so this is a benign inefficiency, not a correctness issue.
func (e *Evaluator) baseFor(sp noc.Spec) (*noc.Scenario, error) {
	st := sp.Structural()
	cjson, err := st.CanonicalJSON()
	if err != nil {
		return nil, fmt.Errorf("service: encoding structural spec: %w", err)
	}
	key := string(cjson)
	e.mu.Lock()
	base, ok := e.bases.get(key)
	e.mu.Unlock()
	if ok {
		return base, nil
	}
	base, err = st.Scenario()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.bases.add(key, base)
	e.mu.Unlock()
	return base, nil
}
