package fleet

import (
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"quarc/noc/service"
)

// Breaker states as reported in PeerHealth.
const (
	stateClosed = "closed"
	stateOpen   = "open"
)

// peer is one fleet member plus its circuit breaker. The breaker opens
// after FailThreshold consecutive failures and re-admits the peer only
// after a cooldown AND a 200 from its /v1/healthz — a degraded (503)
// peer stays out of rotation even though it answers.
type peer struct {
	url string

	failures  atomic.Uint64
	successes atomic.Uint64

	mu          sync.Mutex
	consecFails int
	open        bool
	openedAt    time.Time
	probing     bool
}

func (p *peer) snapshot() service.PeerHealth {
	p.mu.Lock()
	state := stateClosed
	if p.open {
		state = stateOpen
	}
	p.mu.Unlock()
	return service.PeerHealth{
		URL:       p.url,
		State:     state,
		Failures:  p.failures.Load(),
		Successes: p.successes.Load(),
	}
}

// recordSuccess closes the breaker: any served job proves the peer is
// back.
func (d *Dispatcher) recordSuccess(p *peer) {
	p.successes.Add(1)
	p.mu.Lock()
	p.consecFails = 0
	p.open = false
	p.mu.Unlock()
}

// recordFailure counts one failed call and opens the breaker at the
// threshold.
func (d *Dispatcher) recordFailure(p *peer) {
	p.failures.Add(1)
	p.mu.Lock()
	p.consecFails++
	if p.consecFails >= d.cfg.FailThreshold && !p.open {
		p.open = true
		p.openedAt = time.Now()
		d.breakerOpens.Add(1)
	}
	p.mu.Unlock()
}

// admissible reports whether the peer may receive a job. A closed
// breaker admits immediately. An open one admits only after the
// cooldown has elapsed and a live healthz probe answers 200; a failed
// probe restarts the cooldown. At most one goroutine probes a given
// peer at a time — the rest treat it as still open.
func (d *Dispatcher) admissible(p *peer) bool {
	p.mu.Lock()
	if !p.open {
		p.mu.Unlock()
		return true
	}
	if time.Since(p.openedAt) < d.cfg.Cooldown || p.probing {
		p.mu.Unlock()
		return false
	}
	p.probing = true
	p.mu.Unlock()

	ok := d.probe(p.url)

	p.mu.Lock()
	p.probing = false
	if ok {
		p.open = false
		p.consecFails = 0
	} else {
		p.openedAt = time.Now()
	}
	p.mu.Unlock()
	return ok
}

// probe asks the peer's healthz whether it is serving. Only a 200
// re-admits: a 503 (draining, saturated) keeps the breaker open.
func (d *Dispatcher) probe(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
