// Package fleet fans quarc evaluations out to peer quarcd daemons over
// the service HTTP protocol, with the failure handling a real fleet
// needs: per-job deadlines, bounded retries under capped exponential
// backoff with deterministic jitter, hedged re-dispatch of stragglers,
// a healthz-driven circuit breaker per peer, and graceful degradation
// to local evaluation when no peer can serve.
//
// Correctness leans on content addressing: a spec's fingerprint names
// its result, so re-dispatching a job — retry, hedge, or fallback — can
// only ever produce the same bytes. The dispatcher verifies the
// X-Quarc-Fingerprint echoed by peers against the spec it sent, so a
// confused peer is treated as a transport failure, never trusted.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quarc/noc"
	"quarc/noc/service"
)

// maxResponseBody bounds one peer response document.
const maxResponseBody = 1 << 24

// errNoPeers reports that no configured peer is currently admissible.
var errNoPeers = errors.New("fleet: no admissible peers")

// Config tunes a Dispatcher. Zero durations and counts take the
// defaults noted on each field.
type Config struct {
	// Peers are the base URLs of peer quarcd daemons, e.g.
	// "http://10.0.0.2:8080". Trailing slashes are stripped.
	Peers []string
	// Local is the evaluator of last resort (and the authority on spec
	// errors). Required.
	Local *service.Evaluator
	// Client performs peer HTTP calls. Defaults to a plain http.Client;
	// tests thread a faultinject.Transport through here.
	Client *http.Client
	// RequestTimeout bounds one peer call (default 30s).
	RequestTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per job, first try included
	// (default 3).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// between attempts (defaults 25ms and 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeAfter launches a second dispatch to another peer when the
	// first has not answered within this duration; first answer wins.
	// Zero disables hedging.
	HedgeAfter time.Duration
	// FailThreshold consecutive failures open a peer's circuit breaker
	// (default 3).
	FailThreshold int
	// Cooldown is how long an open breaker waits before probing the
	// peer's healthz for re-admission (default 5s).
	Cooldown time.Duration
	// ProbeTimeout bounds one re-admission healthz probe (default 2s).
	ProbeTimeout time.Duration
	// Concurrency bounds in-flight sweep points (default 2 per peer,
	// minimum 4).
	Concurrency int
	// Seed drives the deterministic backoff jitter.
	Seed uint64
}

// Counters snapshots the dispatcher's fleet-level activity. All fields
// are lifetime totals.
type Counters struct {
	// Dispatched counts jobs answered by a peer.
	Dispatched uint64 `json:"dispatched"`
	// Retries counts re-dispatches after a retryable peer failure.
	Retries uint64 `json:"retries"`
	// Hedges counts hedged second dispatches; HedgeWins counts the ones
	// that answered first.
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	// Fallbacks counts jobs degraded to local evaluation.
	Fallbacks uint64 `json:"fallbacks"`
	// BreakerOpens counts breaker open transitions across all peers.
	BreakerOpens uint64 `json:"breaker_opens"`
}

// Dispatcher fans evaluations out to peers and implements
// service.Backend (plus service.PeerReporter), so quarcd serves it
// exactly like a local evaluator.
type Dispatcher struct {
	cfg    Config
	client *http.Client
	local  *service.Evaluator
	peers  []*peer
	next   atomic.Uint64
	jitter *jitterSource

	dispatched   atomic.Uint64
	retries      atomic.Uint64
	hedges       atomic.Uint64
	hedgeWins    atomic.Uint64
	fallbacks    atomic.Uint64
	breakerOpens atomic.Uint64

	// Trace routing: which peer computed which fingerprint, so a
	// /v1/trace query lands on the box whose cache actually holds the
	// series. Bounded FIFO; a forgotten (or wrong) route only costs a
	// fallback to local lookup.
	traceMu    sync.Mutex
	tracePeers map[uint64]*peer
	traceRing  []uint64
	traceNext  int
}

// maxTraceRoutes bounds the fingerprint-to-peer trace routing table.
const maxTraceRoutes = 4096

// New builds a Dispatcher. Local is required; an empty peer list is
// legal and degrades every job to local evaluation.
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Local == nil {
		return nil, errors.New("fleet: Config.Local is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = max(4, 2*len(cfg.Peers))
	}
	d := &Dispatcher{
		cfg:    cfg,
		client: cfg.Client,
		local:  cfg.Local,
		jitter: newJitterSource(cfg.Seed),
	}
	for _, u := range cfg.Peers {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, errors.New("fleet: empty peer URL")
		}
		d.peers = append(d.peers, &peer{url: u})
	}
	return d, nil
}

// Evaluate serves one spec: dispatched to a peer when one is
// admissible, degraded to the local evaluator otherwise. Peer-served
// results carry service.SourceFleet.
func (d *Dispatcher) Evaluate(ctx context.Context, sp noc.Spec) (noc.Result, service.Source, error) {
	if len(d.peers) > 0 {
		res, err := d.dispatch(ctx, sp)
		if err == nil {
			d.dispatched.Add(1)
			return res, service.SourceFleet, nil
		}
		if ctx.Err() != nil {
			return noc.Result{}, "", fmt.Errorf("fleet: %w", ctx.Err())
		}
		// Every dispatch failure — peers down, retries exhausted, or a
		// peer-side 4xx — degrades to local evaluation, which either
		// serves the job or produces the authoritative typed error.
		d.fallbacks.Add(1)
	}
	return d.local.Evaluate(ctx, sp)
}

// Sweep evaluates the spec across the rate grid, fanning the points out
// as independent jobs under the concurrency bound. Validation matches
// service.Evaluator.Sweep exactly.
func (d *Dispatcher) Sweep(ctx context.Context, sp noc.Spec, rates []float64) ([]noc.Result, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("%w: a sweep needs at least one rate", noc.ErrInvalidSpec)
	}
	if len(rates) > service.MaxSweepPoints {
		return nil, fmt.Errorf("%w: %d sweep points exceed the %d-point bound", noc.ErrInvalidSpec, len(rates), service.MaxSweepPoints)
	}
	for _, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return nil, fmt.Errorf("%w: invalid sweep rate %v", noc.ErrInvalidSpec, r)
		}
	}
	results := make([]noc.Result, len(rates))
	errs := make([]error, len(rates))
	sem := make(chan struct{}, d.cfg.Concurrency)
	var wg sync.WaitGroup
	for i, r := range rates {
		pt := sp
		pt.Rate = r
		wg.Add(1)
		go func(i int, pt noc.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], _, errs[i] = d.Evaluate(ctx, pt)
		}(i, pt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: sweep point rate=%g: %w", rates[i], err)
		}
	}
	return results, nil
}

// Trace serves a /v1/trace query: forwarded to the peer that computed
// the fingerprint's result (per the trace routing table) when that
// peer is admissible, answered from the local evaluator's caches
// otherwise — including when the peer has since forgotten or lost the
// entry.
func (d *Dispatcher) Trace(ctx context.Context, fp uint64) (noc.Result, service.Source, error) {
	if p := d.tracePeer(fp); p != nil && d.admissible(p) {
		res, err := d.getTrace(ctx, p, fp)
		if err == nil {
			d.recordSuccess(p)
			return res, service.SourceFleet, nil
		}
		if ctx.Err() != nil {
			return noc.Result{}, "", fmt.Errorf("fleet: %w", ctx.Err())
		}
		var se *statusError
		if !errors.As(err, &se) {
			// The peer answered nothing at all; that counts against its
			// breaker. An answered error (404 after an eviction, 503 while
			// draining) does not — the box is alive.
			d.recordFailure(p)
		}
	}
	return d.local.Trace(ctx, fp)
}

// getTrace performs one GET /v1/trace call against p, with the same
// response validation as post.
func (d *Dispatcher) getTrace(ctx context.Context, p *peer, fp uint64) (noc.Result, error) {
	cctx, cancel := context.WithTimeout(ctx, d.cfg.RequestTimeout)
	defer cancel()
	want := fmt.Sprintf("%016x", fp)
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, p.url+"/v1/trace/"+want, nil)
	if err != nil {
		return noc.Result{}, fmt.Errorf("fleet: peer %s: %w", p.url, err)
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return noc.Result{}, fmt.Errorf("fleet: peer %s: %w", p.url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
	if err != nil {
		return noc.Result{}, fmt.Errorf("fleet: peer %s: reading response: %w", p.url, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, ec := compactError(data)
		return noc.Result{}, &statusError{url: p.url, code: resp.StatusCode, errCode: ec, body: msg}
	}
	if got := resp.Header.Get(service.HeaderFingerprint); got != "" && got != want {
		return noc.Result{}, fmt.Errorf("fleet: peer %s answered fingerprint %s for trace %s", p.url, got, want)
	}
	var res noc.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return noc.Result{}, fmt.Errorf("fleet: peer %s: decoding result: %w", p.url, err)
	}
	return res, nil
}

// rememberTrace records that p computed fp's result, evicting the
// oldest route past the table bound.
func (d *Dispatcher) rememberTrace(fp uint64, p *peer) {
	d.traceMu.Lock()
	defer d.traceMu.Unlock()
	if d.tracePeers == nil {
		d.tracePeers = make(map[uint64]*peer)
	}
	if _, ok := d.tracePeers[fp]; !ok {
		if len(d.traceRing) < maxTraceRoutes {
			d.traceRing = append(d.traceRing, fp)
		} else {
			delete(d.tracePeers, d.traceRing[d.traceNext])
			d.traceRing[d.traceNext] = fp
			d.traceNext = (d.traceNext + 1) % maxTraceRoutes
		}
	}
	d.tracePeers[fp] = p
}

// tracePeer returns the recorded computing peer for fp, nil when
// unknown.
func (d *Dispatcher) tracePeer(fp uint64) *peer {
	d.traceMu.Lock()
	defer d.traceMu.Unlock()
	return d.tracePeers[fp]
}

// Stats delegates to the local evaluator's counters.
func (d *Dispatcher) Stats() service.Stats { return d.local.Stats() }

// Healthz delegates to the local evaluator's state.
func (d *Dispatcher) Healthz() service.HealthState { return d.local.Healthz() }

// Counters snapshots the fleet-level activity totals.
func (d *Dispatcher) Counters() Counters {
	return Counters{
		Dispatched:   d.dispatched.Load(),
		Retries:      d.retries.Load(),
		Hedges:       d.hedges.Load(),
		HedgeWins:    d.hedgeWins.Load(),
		Fallbacks:    d.fallbacks.Load(),
		BreakerOpens: d.breakerOpens.Load(),
	}
}

// PeerHealth implements service.PeerReporter: one breaker snapshot per
// configured peer, in configuration order.
func (d *Dispatcher) PeerHealth() []service.PeerHealth {
	out := make([]service.PeerHealth, len(d.peers))
	for i, p := range d.peers {
		out[i] = p.snapshot()
	}
	return out
}

// dispatch runs the retry loop: pick an admissible peer, call it (with
// hedging), back off and repeat on retryable failure. A peer-side 4xx
// is non-retryable — the spec itself is wrong and every peer will say
// the same.
func (d *Dispatcher) dispatch(ctx context.Context, sp noc.Spec) (noc.Result, error) {
	body, err := sp.CanonicalJSON()
	if err != nil {
		return noc.Result{}, fmt.Errorf("fleet: encoding spec: %w", err)
	}
	var lastErr error
	for attempt := 1; attempt <= d.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return noc.Result{}, err
		}
		p := d.pickPeer(nil)
		if p == nil {
			if lastErr != nil {
				return noc.Result{}, fmt.Errorf("%w after %d attempts: %w", errNoPeers, attempt-1, lastErr)
			}
			return noc.Result{}, errNoPeers
		}
		if attempt > 1 {
			d.retries.Add(1)
		}
		res, err := d.callHedged(ctx, p, sp, body)
		if err == nil {
			return res, nil
		}
		if isNonRetryable(err) {
			return noc.Result{}, err
		}
		lastErr = err
		if attempt < d.cfg.MaxAttempts {
			if err := sleepCtx(ctx, d.backoff(attempt)); err != nil {
				return noc.Result{}, err
			}
		}
	}
	return noc.Result{}, fmt.Errorf("fleet: %d attempts exhausted: %w", d.cfg.MaxAttempts, lastErr)
}

// callHedged performs one dispatch attempt against primary, launching a
// hedged second call to another peer if the first is still unanswered
// after HedgeAfter. First success wins; the loser is canceled. The
// outcome channel is buffered to the launch count so abandoned calls
// never leak a goroutine.
func (d *Dispatcher) callHedged(ctx context.Context, primary *peer, sp noc.Spec, body []byte) (noc.Result, error) {
	cctx, cancel := context.WithTimeout(ctx, d.cfg.RequestTimeout)
	defer cancel()

	type outcome struct {
		res    noc.Result
		err    error
		peer   *peer
		hedged bool
	}
	ch := make(chan outcome, 2)
	launch := func(p *peer, hedged bool) {
		go func() {
			res, err := d.post(cctx, p, sp, body)
			ch <- outcome{res: res, err: err, peer: p, hedged: hedged}
		}()
	}
	launch(primary, false)
	outstanding := 1

	var hedge <-chan time.Time
	if d.cfg.HedgeAfter > 0 && len(d.peers) > 1 {
		t := time.NewTimer(d.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}

	var lastErr error
	for {
		select {
		case o := <-ch:
			outstanding--
			if o.err == nil {
				d.recordSuccess(o.peer)
				d.rememberTrace(sp.Fingerprint(), o.peer)
				if o.hedged {
					d.hedgeWins.Add(1)
				}
				return o.res, nil
			}
			// A deadline expiry counts against the breaker too: a peer
			// that cannot answer within the job deadline is failing,
			// whatever the transport says.
			d.recordFailure(o.peer)
			if isNonRetryable(o.err) {
				return noc.Result{}, o.err
			}
			lastErr = o.err
			if outstanding == 0 {
				return noc.Result{}, lastErr
			}
		case <-hedge:
			hedge = nil
			if p := d.pickPeer(primary); p != nil {
				d.hedges.Add(1)
				launch(p, true)
				outstanding++
			}
		}
	}
}

// post performs one /v1/evaluate call and validates the answer: status,
// echoed fingerprint, and a full JSON decode. Anything short of a
// complete, correctly-addressed result is an error — a truncated or
// corrupted response can never be mistaken for data.
func (d *Dispatcher) post(ctx context.Context, p *peer, sp noc.Spec, body []byte) (noc.Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+"/v1/evaluate", bytes.NewReader(body))
	if err != nil {
		return noc.Result{}, fmt.Errorf("fleet: peer %s: %w", p.url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return noc.Result{}, fmt.Errorf("fleet: peer %s: %w", p.url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
	if err != nil {
		return noc.Result{}, fmt.Errorf("fleet: peer %s: reading response: %w", p.url, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, ec := compactError(data)
		return noc.Result{}, &statusError{url: p.url, code: resp.StatusCode, errCode: ec, body: msg}
	}
	want := fmt.Sprintf("%016x", sp.Fingerprint())
	if got := resp.Header.Get(service.HeaderFingerprint); got != "" && got != want {
		return noc.Result{}, fmt.Errorf("fleet: peer %s answered fingerprint %s for job %s", p.url, got, want)
	}
	var res noc.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return noc.Result{}, fmt.Errorf("fleet: peer %s: decoding result: %w", p.url, err)
	}
	return res, nil
}

// pickPeer round-robins over the admissible peers, skipping exclude
// when any other peer qualifies. Nil when no peer is admissible.
func (d *Dispatcher) pickPeer(exclude *peer) *peer {
	if len(d.peers) == 0 {
		return nil
	}
	start := int(d.next.Add(1)-1) % len(d.peers)
	var fallback *peer
	for i := 0; i < len(d.peers); i++ {
		p := d.peers[(start+i)%len(d.peers)]
		if !d.admissible(p) {
			continue
		}
		if p == exclude {
			fallback = p
			continue
		}
		return p
	}
	return fallback
}

// statusError is a non-200 peer response. errCode carries the
// machine-readable code from the service error envelope when the peer
// sent one ("" for legacy or non-JSON bodies).
type statusError struct {
	url     string
	code    int
	errCode string
	body    string
}

func (e *statusError) Error() string {
	if e.body == "" {
		return fmt.Sprintf("fleet: peer %s answered %d", e.url, e.code)
	}
	return fmt.Sprintf("fleet: peer %s answered %d: %s", e.url, e.code, e.body)
}

// isNonRetryable reports whether the peer's answer settles the job.
// The envelope code is authoritative when present: invalid_spec and
// not_found are verdicts about the request itself, which every peer
// will repeat, while draining and queue_saturated are verdicts about
// that peer only — another one may serve the job, whatever the HTTP
// status said. Without a code, a 4xx is taken as a refusal of the
// request (the pre-envelope heuristic).
func isNonRetryable(err error) bool {
	var se *statusError
	if !errors.As(err, &se) {
		return false
	}
	switch se.errCode {
	case "invalid_spec", "not_found":
		return true
	case "":
		return se.code >= 400 && se.code < 500
	}
	return false
}

// compactError extracts the message and machine code from a peer's
// JSON error envelope, falling back to a trimmed raw prefix.
func compactError(data []byte) (msg, code string) {
	var eb struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(data, &eb); err == nil && eb.Error != "" {
		return eb.Error, eb.Code
	}
	s := strings.TrimSpace(string(data))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s, ""
}
