package fleet

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"
)

// jitterSource is a locked, seeded PCG stream: retries spread out like
// random jitter, but a given dispatcher replays the same sequence run
// to run, keeping fault-injection tests deterministic.
type jitterSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitterSource(seed uint64) *jitterSource {
	return &jitterSource{rng: rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))}
}

func (j *jitterSource) float64() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Float64()
}

// backoff is the pause before attempt+1: capped exponential growth from
// BaseBackoff, scaled into [0.5, 1.0) of the step so synchronized
// retries decorrelate.
func (d *Dispatcher) backoff(attempt int) time.Duration {
	b := d.cfg.BaseBackoff
	for i := 1; i < attempt && b < d.cfg.MaxBackoff; i++ {
		b *= 2
	}
	if b > d.cfg.MaxBackoff {
		b = d.cfg.MaxBackoff
	}
	return time.Duration(float64(b) * (0.5 + 0.5*d.jitter.float64()))
}

// sleepCtx waits out d or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
