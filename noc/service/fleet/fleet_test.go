package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"quarc/internal/faultinject"
	"quarc/noc"
	"quarc/noc/service"
)

func testSpec() noc.Spec {
	return noc.Spec{
		Topology: "quarc", N: 16, Pattern: "localized", Dests: 4,
		MsgLen: 16, Rate: 0.002, Alpha: 0.05,
		Seed: 5, Warmup: 500, Measure: 4000,
	}
}

func resultJSON(t *testing.T, r noc.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// directJSON evaluates the spec straight through the noc engines — the
// ground truth every served result must match bitwise.
func directJSON(t *testing.T, sp noc.Spec) string {
	t.Helper()
	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := noc.Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	return resultJSON(t, res)
}

// newPeer stands up one peer daemon: a real evaluator behind the real
// HTTP handler.
func newPeer(t *testing.T) (*httptest.Server, *service.Evaluator) {
	t.Helper()
	e := service.New(service.Config{Workers: 2})
	t.Cleanup(e.Close)
	srv := httptest.NewServer(service.NewHandler(e))
	t.Cleanup(srv.Close)
	return srv, e
}

func newLocal(t *testing.T) *service.Evaluator {
	t.Helper()
	e := service.New(service.Config{Workers: 2})
	t.Cleanup(e.Close)
	return e
}

// TestSweepAcrossPeers pins the basic fan-out: a sweep splits across
// two peers, every point is peer-served, and every result is
// bitwise-identical to direct evaluation.
func TestSweepAcrossPeers(t *testing.T) {
	p1, e1 := newPeer(t)
	p2, e2 := newPeer(t)
	d, err := New(Config{Peers: []string{p1.URL, p2.URL}, Local: newLocal(t), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	sp := testSpec()
	rates := []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006}
	results, err := d.Sweep(context.Background(), sp, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		pt := sp
		pt.Rate = r
		if got, want := resultJSON(t, results[i]), directJSON(t, pt); got != want {
			t.Errorf("rate %g: fleet result differs from direct:\n %s\n %s", r, got, want)
		}
	}
	c := d.Counters()
	if c.Dispatched != uint64(len(rates)) || c.Fallbacks != 0 {
		t.Errorf("counters = %+v, want %d dispatched and no fallbacks", c, len(rates))
	}
	if e1.Stats().Evaluations == 0 || e2.Stats().Evaluations == 0 {
		t.Errorf("sweep did not split: peer evaluations %d and %d",
			e1.Stats().Evaluations, e2.Stats().Evaluations)
	}
	for _, ph := range d.PeerHealth() {
		if ph.State != stateClosed || ph.Successes == 0 {
			t.Errorf("peer %s health = %+v", ph.URL, ph)
		}
	}

	// Sweep validation matches the service contract.
	for _, bad := range [][]float64{nil, {-1}, make([]float64, service.MaxSweepPoints+1)} {
		if _, err := d.Sweep(context.Background(), sp, bad); !errors.Is(err, noc.ErrInvalidSpec) {
			t.Errorf("sweep accepted rates of len %d: %v", len(bad), err)
		}
	}
}

// TestRetryAfterTransientFailure pins the retry loop: two injected
// transport errors, then success — bitwise-correct, with the retries
// counted.
func TestRetryAfterTransientFailure(t *testing.T) {
	p1, _ := newPeer(t)
	inj := faultinject.New(7, faultinject.Rule{
		Point: "peer.rpc", Kind: faultinject.KindError, First: 2,
	})
	client := &http.Client{Transport: &faultinject.Transport{Point: "peer.rpc", Inj: inj}}
	d, err := New(Config{
		Peers: []string{p1.URL}, Local: newLocal(t), Client: client,
		MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	sp := testSpec()
	res, src, err := d.Evaluate(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if src != service.SourceFleet {
		t.Errorf("source = %s, want fleet", src)
	}
	if got, want := resultJSON(t, res), directJSON(t, sp); got != want {
		t.Errorf("retried result differs from direct:\n %s\n %s", got, want)
	}
	c := d.Counters()
	if c.Retries != 2 || c.Dispatched != 1 || c.Fallbacks != 0 {
		t.Errorf("counters = %+v, want 2 retries, 1 dispatched", c)
	}
	if inj.Fired("peer.rpc") != 2 {
		t.Errorf("injector fired %d faults, want 2", inj.Fired("peer.rpc"))
	}
}

// TestHedgedDispatch pins straggler hedging: the primary call hangs on
// injected latency, the hedge to the second peer answers, and the
// result is still bitwise-correct.
func TestHedgedDispatch(t *testing.T) {
	p1, _ := newPeer(t)
	p2, _ := newPeer(t)
	// Only the first transport call is slow; the hedge is clean.
	inj := faultinject.New(3, faultinject.Rule{
		Point: "peer.rpc", Kind: faultinject.KindLatency, First: 1, Latency: 5 * time.Second,
	})
	client := &http.Client{Transport: &faultinject.Transport{Point: "peer.rpc", Inj: inj}}
	d, err := New(Config{
		Peers: []string{p1.URL, p2.URL}, Local: newLocal(t), Client: client,
		HedgeAfter: 20 * time.Millisecond, BaseBackoff: time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	sp := testSpec()
	start := time.Now()
	res, src, err := d.Evaluate(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if src != service.SourceFleet {
		t.Errorf("source = %s, want fleet", src)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Errorf("hedge did not rescue the straggler: took %v", elapsed)
	}
	if got, want := resultJSON(t, res), directJSON(t, sp); got != want {
		t.Errorf("hedged result differs from direct:\n %s\n %s", got, want)
	}
	c := d.Counters()
	if c.Hedges != 1 || c.HedgeWins != 1 {
		t.Errorf("counters = %+v, want 1 hedge and 1 hedge win", c)
	}
}

// TestLocalFallback pins graceful degradation: with every peer dead,
// the job degrades to local evaluation and still answers correctly.
func TestLocalFallback(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	d, err := New(Config{
		Peers: []string{dead.URL}, Local: newLocal(t),
		MaxAttempts: 2, BaseBackoff: time.Millisecond, FailThreshold: 2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	sp := testSpec()
	res, src, err := d.Evaluate(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if src != service.SourceComputed {
		t.Errorf("source = %s, want computed (local fallback)", src)
	}
	if got, want := resultJSON(t, res), directJSON(t, sp); got != want {
		t.Errorf("fallback result differs from direct:\n %s\n %s", got, want)
	}
	c := d.Counters()
	if c.Fallbacks != 1 || c.Dispatched != 0 {
		t.Errorf("counters = %+v, want 1 fallback, 0 dispatched", c)
	}
	if c.BreakerOpens != 1 {
		t.Errorf("breaker opens = %d, want 1 after %d consecutive failures", c.BreakerOpens, 2)
	}
	if ph := d.PeerHealth(); ph[0].State != stateOpen {
		t.Errorf("dead peer state = %s, want open", ph[0].State)
	}
}

// TestNonRetryable4xx pins that a peer-side 400 is never retried: the
// spec itself is wrong, and the local evaluator supplies the
// authoritative typed error.
func TestNonRetryable4xx(t *testing.T) {
	p1, _ := newPeer(t)
	d, err := New(Config{Peers: []string{p1.URL}, Local: newLocal(t), BaseBackoff: time.Millisecond, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = d.Evaluate(context.Background(), noc.Spec{Record: "x.trace"})
	if !errors.Is(err, service.ErrTraceSpec) {
		t.Errorf("trace spec error = %v, want ErrTraceSpec", err)
	}
	c := d.Counters()
	if c.Retries != 0 {
		t.Errorf("a 400 was retried: %+v", c)
	}
	if c.Fallbacks != 1 {
		t.Errorf("counters = %+v, want the 400 to degrade to local for the typed error", c)
	}
	// The breaker does not punish the peer for refusing a bad spec... but
	// the failure is still counted in the lifetime total.
	if ph := d.PeerHealth(); ph[0].State != stateClosed {
		t.Errorf("peer state after 400 = %s, want closed", ph[0].State)
	}
}

// TestBreakerLifecycle walks the full circuit: failures open it, a
// degraded healthz keeps it open past the cooldown, and only a 200
// probe re-admits the peer.
func TestBreakerLifecycle(t *testing.T) {
	e := service.New(service.Config{Workers: 1})
	t.Cleanup(e.Close)
	inner := service.NewHandler(e)
	var failing atomic.Bool
	var degraded atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" && degraded.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		if r.URL.Path != "/v1/healthz" && failing.Load() {
			http.Error(w, `{"error":"injected outage"}`, http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	d, err := New(Config{
		Peers: []string{srv.URL}, Local: newLocal(t),
		MaxAttempts: 2, FailThreshold: 2, BaseBackoff: time.Millisecond,
		Cooldown: 10 * time.Millisecond, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec()
	ctx := context.Background()

	// Outage: both attempts 500, breaker opens, job degrades to local.
	failing.Store(true)
	degraded.Store(true)
	if _, src, err := d.Evaluate(ctx, sp); err != nil || src != service.SourceComputed {
		t.Fatalf("outage evaluate: src=%s err=%v", src, err)
	}
	if ph := d.PeerHealth(); ph[0].State != stateOpen {
		t.Fatalf("peer state after outage = %s, want open", ph[0].State)
	}

	// Past the cooldown but healthz still 503: the probe must NOT
	// re-admit, and the job keeps degrading. A fresh seed keeps the
	// local LRU out of the picture.
	time.Sleep(20 * time.Millisecond)
	failing.Store(false)
	sp2 := sp
	sp2.Seed = 99
	if _, src, err := d.Evaluate(ctx, sp2); err != nil || src != service.SourceComputed {
		t.Fatalf("degraded-peer evaluate: src=%s err=%v", src, err)
	}
	if ph := d.PeerHealth(); ph[0].State != stateOpen {
		t.Errorf("503 healthz re-admitted the peer")
	}

	// Healthy again: after another cooldown the probe answers 200 and
	// the peer serves.
	degraded.Store(false)
	time.Sleep(20 * time.Millisecond)
	sp3 := sp
	sp3.Seed = 123
	res, src, err := d.Evaluate(ctx, sp3)
	if err != nil {
		t.Fatal(err)
	}
	if src != service.SourceFleet {
		t.Errorf("recovered evaluate source = %s, want fleet", src)
	}
	if got, want := resultJSON(t, res), directJSON(t, sp3); got != want {
		t.Errorf("recovered result differs from direct")
	}
	if ph := d.PeerHealth(); ph[0].State != stateClosed {
		t.Errorf("peer state after recovery = %s, want closed", ph[0].State)
	}
}

// TestNoPeersDegradesToLocal pins the empty-fleet edge: a dispatcher
// with no peers is just the local evaluator.
func TestNoPeersDegradesToLocal(t *testing.T) {
	d, err := New(Config{Local: newLocal(t)})
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec()
	res, src, err := d.Evaluate(context.Background(), sp)
	if err != nil || src != service.SourceComputed {
		t.Fatalf("src=%s err=%v", src, err)
	}
	if got, want := resultJSON(t, res), directJSON(t, sp); got != want {
		t.Errorf("result differs from direct")
	}
	if c := d.Counters(); c.Fallbacks != 0 {
		t.Errorf("an empty fleet counted a fallback: %+v", c)
	}
	if hs := d.Healthz(); hs.Status != service.StatusOK {
		t.Errorf("healthz = %+v", hs)
	}
}

// TestConfigErrors pins constructor validation.
func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a nil Local")
	}
	if _, err := New(Config{Local: newLocal(t), Peers: []string{" "}}); err == nil {
		t.Error("New accepted an empty peer URL")
	}
}

// TestBackoffShape pins the backoff envelope: capped exponential, with
// jitter inside [0.5, 1.0) of the step, and deterministic for a seed.
func TestBackoffShape(t *testing.T) {
	mk := func() *Dispatcher {
		d, err := New(Config{
			Local: newLocal(t), BaseBackoff: 10 * time.Millisecond,
			MaxBackoff: 40 * time.Millisecond, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := mk(), mk()
	steps := []time.Duration{10, 20, 40, 40, 40} // ms, capped
	for i, stepMs := range steps {
		step := stepMs * time.Millisecond
		ba, bb := a.backoff(i+1), b.backoff(i+1)
		if ba != bb {
			t.Errorf("attempt %d: same seed, different backoff: %v vs %v", i+1, ba, bb)
		}
		if ba < step/2 || ba >= step {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", i+1, ba, step/2, step)
		}
	}
}
