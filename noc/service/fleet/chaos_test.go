package fleet

import (
	"context"
	"net/http"
	"testing"
	"time"

	"quarc/internal/faultinject"
	"quarc/noc/service"
	"quarc/noc/service/store"
)

// TestChaosBitwise is the fault-injection suite: under every scenario —
// transport errors, truncated peer responses, stragglers rescued by
// hedging, store write corruption, and all of them at once — a sweep
// either fails cleanly or answers, and every answer is bitwise-
// identical to direct evaluation. Retries, degradation and quarantine
// are allowed; a wrong Result never is. Run under -race in CI.
func TestChaosBitwise(t *testing.T) {
	rates := []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008}
	base := testSpec()
	base.Measure = 2000 // fast points; chaos runs many of them

	// Ground truth, computed once outside any fault machinery.
	want := make(map[float64]string, len(rates))
	for _, r := range rates {
		pt := base
		pt.Rate = r
		want[r] = directJSON(t, pt)
	}

	scenarios := []struct {
		name       string
		transport  []faultinject.Rule
		storeRules []faultinject.Rule
		hedgeAfter time.Duration
		noPeers    bool
	}{
		{
			name: "transport-errors",
			transport: []faultinject.Rule{
				{Point: "peer.rpc", Kind: faultinject.KindError, Prob: 0.4},
			},
		},
		{
			name: "partial-responses",
			transport: []faultinject.Rule{
				{Point: "peer.rpc", Kind: faultinject.KindPartial, Prob: 0.4},
			},
		},
		{
			name: "latency-hedge",
			transport: []faultinject.Rule{
				{Point: "peer.rpc", Kind: faultinject.KindLatency, Prob: 0.3, Latency: time.Second},
			},
			hedgeAfter: 15 * time.Millisecond,
		},
		{
			// No peers: every point computes locally through the faulty
			// store, so the on-disk aftermath below is non-trivial.
			name:    "store-faults",
			noPeers: true,
			storeRules: []faultinject.Rule{
				{Point: "store.put", Kind: faultinject.KindShortWrite, Prob: 0.4},
				{Point: "store.put", Kind: faultinject.KindCorrupt, Prob: 0.3},
				{Point: "store.get", Kind: faultinject.KindError, Prob: 0.3},
			},
		},
		{
			name: "kitchen-sink",
			transport: []faultinject.Rule{
				{Point: "peer.rpc", Kind: faultinject.KindError, Prob: 0.25},
				{Point: "peer.rpc", Kind: faultinject.KindPartial, Prob: 0.25},
				{Point: "peer.rpc", Kind: faultinject.KindLatency, Prob: 0.15, Latency: time.Second},
			},
			storeRules: []faultinject.Rule{
				{Point: "store.put", Kind: faultinject.KindCorrupt, Prob: 0.4},
				{Point: "store.get", Kind: faultinject.KindError, Prob: 0.4},
			},
			hedgeAfter: 15 * time.Millisecond,
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var peers []string
			if !sc.noPeers {
				p1, _ := newPeer(t)
				p2, _ := newPeer(t)
				peers = []string{p1.URL, p2.URL}
			}

			dir := t.TempDir()
			var st *store.Store
			if sc.storeRules != nil {
				inj := faultinject.New(11, sc.storeRules...)
				var err error
				if st, err = store.Open(store.Config{Dir: dir, Inject: inj}); err != nil {
					t.Fatal(err)
				}
			}
			local := service.New(service.Config{Workers: 2, Store: st})
			t.Cleanup(local.Close)

			client := &http.Client{}
			if sc.transport != nil {
				client.Transport = &faultinject.Transport{
					Point: "peer.rpc",
					Inj:   faultinject.New(13, sc.transport...),
				}
			}
			// RequestTimeout well under the injected latency: an attempt
			// whose primary AND hedge both straggle times out and
			// retries instead of waiting out the fault.
			d, err := New(Config{
				Peers: peers, Local: local, Client: client,
				RequestTimeout: 250 * time.Millisecond,
				MaxAttempts:    4, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
				HedgeAfter: sc.hedgeAfter, FailThreshold: 100, Seed: 17,
			})
			if err != nil {
				t.Fatal(err)
			}

			results, err := d.Sweep(context.Background(), base, rates)
			if err != nil {
				t.Fatalf("chaos sweep failed outright: %v", err)
			}
			for i, r := range rates {
				if got := resultJSON(t, results[i]); got != want[r] {
					t.Errorf("%s rate %g: WRONG RESULT under faults:\n got:  %s\n want: %s",
						sc.name, r, got, want[r])
				}
			}
			c := d.Counters()
			t.Logf("%s: %+v", sc.name, c)

			if sc.storeRules == nil {
				return
			}
			// Reopen the battered store without injection: whatever the
			// chaos run left on disk is either served bitwise-correct or
			// quarantined — never wrong.
			local.Close()
			clean, err := store.Open(store.Config{Dir: dir})
			if err != nil {
				t.Fatalf("reopening chaos store: %v", err)
			}
			fresh := service.New(service.Config{Workers: 2, Store: clean})
			t.Cleanup(fresh.Close)
			for _, r := range rates {
				pt := base
				pt.Rate = r
				res, src, err := fresh.Evaluate(context.Background(), pt)
				if err != nil {
					t.Fatalf("post-chaos evaluate rate %g: %v", r, err)
				}
				if src != service.SourceStore && src != service.SourceComputed {
					t.Errorf("post-chaos source for rate %g = %s", r, src)
				}
				if got := resultJSON(t, res); got != want[r] {
					t.Errorf("post-chaos rate %g: WRONG RESULT from disk:\n got:  %s\n want: %s", r, got, want[r])
				}
			}
		})
	}
}
