package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"quarc/noc"
	"quarc/noc/service"
)

func metricsSpec() noc.Spec {
	sp := testSpec()
	sp.Metrics = true
	return sp
}

// TestTraceForwarding pins the fleet trace path: a dispatched
// evaluation records which peer computed it, a later Trace lands on
// that peer (source fleet), and the served result carries the series.
func TestTraceForwarding(t *testing.T) {
	p1, e1 := newPeer(t)
	local := newLocal(t)
	d, err := New(Config{Peers: []string{p1.URL}, Local: local, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	sp := metricsSpec()
	res, src, err := d.Evaluate(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if src != service.SourceFleet {
		t.Fatalf("evaluate source %q, want fleet", src)
	}
	if res.Series == nil {
		t.Fatal("fleet-served result has no series")
	}

	got, src, err := d.Trace(context.Background(), sp.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if src != service.SourceFleet {
		t.Errorf("trace source %q, want fleet (routed to the computing peer)", src)
	}
	if resultJSON(t, got) != resultJSON(t, res) {
		t.Errorf("traced result differs from the evaluated one:\n %s\n %s",
			resultJSON(t, got), resultJSON(t, res))
	}
	if e1.Stats().Evaluations != 1 {
		t.Errorf("peer ran %d evaluations, want 1 (trace must not recompute)", e1.Stats().Evaluations)
	}
	// The local evaluator never saw the spec at all.
	if local.Stats().Evaluations != 0 {
		t.Errorf("local ran %d evaluations", local.Stats().Evaluations)
	}
}

// TestTraceFallsBackToLocal pins the degradation ladder: an unknown
// fingerprint (no route) goes straight to the local evaluator, and a
// peer that answers 404 (evicted entry) falls back without tripping
// the breaker.
func TestTraceFallsBackToLocal(t *testing.T) {
	p1, _ := newPeer(t)
	local := newLocal(t)
	d, err := New(Config{Peers: []string{p1.URL}, Local: local, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// No route recorded: the local evaluator is the only place to look,
	// and it answers not_found.
	if _, _, err := d.Trace(context.Background(), 0xdeadbeef); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("unrouted trace = %v, want ErrNotFound", err)
	}

	// Evaluate locally (no peers consulted for the series), then force a
	// route to a peer that never computed it: the peer's answered 404
	// must fall back to the local result and leave the breaker closed.
	sp := metricsSpec()
	want, _, err := local.Evaluate(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	d.rememberTrace(sp.Fingerprint(), d.peers[0])
	got, src, err := d.Trace(context.Background(), sp.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if src != service.SourceCache {
		t.Errorf("fallback trace source %q, want cache (local)", src)
	}
	if resultJSON(t, got) != resultJSON(t, want) {
		t.Error("fallback trace result differs from the local evaluation")
	}
	if ph := d.PeerHealth()[0]; ph.State != stateClosed {
		t.Errorf("answered 404 opened the breaker: %+v", ph)
	}
}

// TestTraceDeadPeerFallsBack pins the transport-failure path: a routed
// peer that stopped answering costs a breaker failure but the query
// still resolves locally.
func TestTraceDeadPeerFallsBack(t *testing.T) {
	p1, _ := newPeer(t)
	local := newLocal(t)
	d, err := New(Config{Peers: []string{p1.URL}, Local: local, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp := metricsSpec()
	if _, _, err := local.Evaluate(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	d.rememberTrace(sp.Fingerprint(), d.peers[0])
	p1.Close() // the routed peer is gone

	if _, src, err := d.Trace(context.Background(), sp.Fingerprint()); err != nil {
		t.Fatalf("trace with a dead routed peer: %v", err)
	} else if src != service.SourceCache {
		t.Errorf("source %q, want cache (local fallback)", src)
	}
	if ph := d.PeerHealth()[0]; ph.Failures == 0 {
		t.Errorf("dead peer's transport failure not recorded: %+v", ph)
	}
}

// TestIsNonRetryableCodes pins the code-first retry classification: the
// envelope code is authoritative when present, the status heuristic
// only covers legacy bodies.
func TestIsNonRetryableCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"invalid_spec", &statusError{code: 400, errCode: "invalid_spec"}, true},
		{"not_found", &statusError{code: 404, errCode: "not_found"}, true},
		{"draining 503", &statusError{code: 503, errCode: "draining"}, false},
		{"queue_saturated 503", &statusError{code: 503, errCode: "queue_saturated"}, false},
		// A peer may answer 4xx-ish statuses with retryable codes during
		// rollouts; the code wins over the status.
		{"queue_saturated 429", &statusError{code: 429, errCode: "queue_saturated"}, false},
		{"timeout code", &statusError{code: 504, errCode: "timeout"}, false},
		{"legacy 400", &statusError{code: 400}, true},
		{"legacy 500", &statusError{code: 500}, false},
		{"transport", errors.New("connection refused"), false},
	}
	for _, c := range cases {
		if got := isNonRetryable(c.err); got != c.want {
			t.Errorf("%s: isNonRetryable = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestDispatchReadsEnvelopeCode pins that the classification actually
// reaches the dispatch loop: a peer answering the draining envelope
// with a 4xx-family status is still retried away from, not treated as
// a spec verdict.
func TestDispatchReadsEnvelopeCode(t *testing.T) {
	refusals := 0
	refusing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		refusals++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"shedding load","code":"queue_saturated"}`))
	}))
	defer refusing.Close()
	healthy, _ := newPeer(t)

	d, err := New(Config{
		Peers: []string{refusing.URL, healthy.URL},
		Local: newLocal(t),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec()
	// Drive enough evaluations that round-robin hits the refusing peer
	// first at least once; every one must still come back correct.
	for i := 0; i < 4; i++ {
		pt := sp
		pt.Seed = uint64(10 + i)
		if _, _, err := d.Evaluate(context.Background(), pt); err != nil {
			t.Fatalf("evaluate %d: %v", i, err)
		}
	}
	if refusals == 0 {
		t.Skip("round-robin never hit the refusing peer")
	}
	if c := d.Counters(); c.Retries == 0 && c.Fallbacks > 0 {
		t.Errorf("refusals were not retried: %+v", c)
	}
}
