package service

import (
	"bytes"
	"context"
	_ "embed"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"quarc/noc"
)

// dashboardHTML is the static time-series dashboard page served at
// GET /dashboard: a dependency-free viewer that fetches /v1/trace/{fp}
// and plots the series with inline SVG.
//
//go:embed dashboard.html
var dashboardHTML []byte

// maxRequestBody bounds one request document. Specs are small; a larger
// body is hostile or a client bug.
const maxRequestBody = 1 << 20

// Response headers identifying the served content and how it was
// produced.
const (
	// HeaderFingerprint carries the spec's FNV-1a content address
	// (hexadecimal, 16 digits).
	HeaderFingerprint = "X-Quarc-Fingerprint"
	// HeaderSource carries the response Source: computed, cache,
	// coalesced, store or fleet.
	HeaderSource = "X-Quarc-Source"
)

// Backend is what the HTTP handler serves: the local Evaluator, or a
// fleet.Dispatcher fanning jobs out to peer daemons. Implementations
// must be safe for concurrent use.
type Backend interface {
	// Evaluate serves one spec; see Evaluator.Evaluate.
	Evaluate(ctx context.Context, sp noc.Spec) (noc.Result, Source, error)
	// Sweep evaluates the spec across a rate grid; see Evaluator.Sweep.
	Sweep(ctx context.Context, sp noc.Spec, rates []float64) ([]noc.Result, error)
	// Trace serves the Result (with its recorded time series) of a
	// previous evaluation by content address; see Evaluator.Trace. A
	// fleet dispatcher forwards the query to the peer that computed the
	// point before falling back to its local evaluator.
	Trace(ctx context.Context, fp uint64) (noc.Result, Source, error)
	// Stats snapshots the serving counters.
	Stats() Stats
	// Healthz reports current serviceability.
	Healthz() HealthState
}

// PeerReporter is the optional Backend extension a fleet dispatcher
// implements; when present, /v1/healthz includes the per-peer circuit
// breaker states.
type PeerReporter interface {
	PeerHealth() []PeerHealth
}

// PeerHealth is one peer's circuit-breaker snapshot in the healthz
// response.
type PeerHealth struct {
	URL string `json:"url"`
	// State is "closed" (serving) or "open" (failed out, awaiting a
	// healthz probe).
	State string `json:"state"`
	// Failures and Successes are lifetime call counts.
	Failures  uint64 `json:"failures"`
	Successes uint64 `json:"successes"`
}

// HandlerConfig tunes NewHandlerConfig.
type HandlerConfig struct {
	// RequestTimeout is the per-evaluation server deadline for the
	// evaluate and sweep routes; when it expires before the client's
	// own context, the response is 504 Gateway Timeout. Zero disables.
	RequestTimeout time.Duration
}

// SweepRequest is the POST /v1/sweep document: one spec plus the rate
// grid to evaluate it across.
type SweepRequest struct {
	Spec  noc.Spec  `json:"spec"`
	Rates []float64 `json:"rates"`
}

// SweepPoint is one rate sample of a sweep response.
type SweepPoint struct {
	Rate   float64    `json:"rate"`
	Result noc.Result `json:"result"`
}

// SweepResponse is the POST /v1/sweep response body.
type SweepResponse struct {
	Fingerprint string       `json:"fingerprint"`
	Points      []SweepPoint `json:"points"`
}

// Registry is the GET /v1/registry response body: every name the spec
// codec accepts, straight from the noc registries.
type Registry struct {
	Topologies []string `json:"topologies"`
	Routers    []string `json:"routers"`
	Patterns   []string `json:"patterns"`
	Arrivals   []string `json:"arrivals"`
	Spatials   []string `json:"spatials"`
	Evaluators []string `json:"evaluators"`
}

// Health is the GET /v1/healthz response body. Status "ok" is served
// with 200; anything else (draining, saturated queue) with 503 so load
// balancers and fleet circuit breakers take the box out of rotation
// while it still answers.
type Health struct {
	Status        string       `json:"status"`
	Reason        string       `json:"reason,omitempty"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Stats         Stats        `json:"stats"`
	Peers         []PeerHealth `json:"peers,omitempty"`
}

// Machine-readable error codes, carried in every non-2xx response so
// clients (the fleet dispatcher above all) classify failures without
// parsing English. The human-readable message may change freely; the
// code set is API.
const (
	// CodeInvalidSpec marks client mistakes: malformed documents,
	// out-of-range fields, unservable option combinations. Never retry.
	CodeInvalidSpec = "invalid_spec"
	// CodeDraining marks a server in graceful shutdown. Retry elsewhere.
	CodeDraining = "draining"
	// CodeQueueSaturated marks an overloaded job queue. Retry elsewhere
	// after backoff.
	CodeQueueSaturated = "queue_saturated"
	// CodeNotFound marks a trace query no evaluation answers to.
	CodeNotFound = "not_found"
	// CodeCanceled and CodeTimeout mark a dead client context and an
	// expired server deadline respectively.
	CodeCanceled = "canceled"
	CodeTimeout  = "timeout"
	// CodeInternal is everything else.
	CodeInternal = "internal"
)

// errorBody is every non-2xx response body: a human-readable message
// plus the machine-readable code.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// errorCode classifies an error into the wire code writeError serves.
func errorCode(err error) string {
	switch {
	case errors.Is(err, noc.ErrInvalidSpec), errors.Is(err, noc.ErrInvalidOption),
		errors.Is(err, noc.ErrOptionConflict), errors.Is(err, ErrTraceSpec),
		errors.Is(err, noc.ErrModelInapplicable):
		return CodeInvalidSpec
	case errors.Is(err, ErrQueueSaturated):
		return CodeQueueSaturated
	case errors.Is(err, ErrClosed):
		return CodeDraining
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	}
	return CodeInternal
}

// NewHandler wraps the backend in the quarcd HTTP API:
//
//	POST /v1/evaluate           Spec JSON     -> Result JSON
//	POST /v1/sweep              {spec, rates} -> {fingerprint, points}
//	GET  /v1/trace/{fp}                       -> Result JSON with series
//	GET  /dashboard                           -> time-series dashboard page
//	GET  /v1/registry                         -> registered names
//	GET  /v1/healthz                          -> status + cache/pool stats
//
// Evaluate and sweep responses carry X-Quarc-Fingerprint (the content
// address) and X-Quarc-Source (computed/cache/coalesced/store/fleet).
func NewHandler(b Backend) http.Handler {
	return NewHandlerConfig(b, HandlerConfig{})
}

// NewHandlerConfig is NewHandler with explicit tuning.
func NewHandlerConfig(b Backend, hc HandlerConfig) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		sp, ok := decodeSpec(w, r)
		if !ok {
			return
		}
		ctx, cancel := hc.requestCtx(r)
		defer cancel()
		res, src, err := b.Evaluate(ctx, sp)
		if err != nil {
			writeRequestError(w, r, ctx, err)
			return
		}
		w.Header().Set(HeaderFingerprint, fmt.Sprintf("%016x", sp.Fingerprint()))
		w.Header().Set(HeaderSource, string(src))
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
		if err != nil {
			writeError(w, fmt.Errorf("%w: reading request: %w", noc.ErrInvalidSpec, err))
			return
		}
		// The embedded spec goes through the same strict ParseSpec as
		// /v1/evaluate: a typo'd field must 400 here too, not silently
		// sweep the default value.
		var raw struct {
			Spec  json.RawMessage `json:"spec"`
			Rates []float64       `json:"rates"`
		}
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&raw); err != nil {
			writeError(w, fmt.Errorf("%w: %w", noc.ErrInvalidSpec, err))
			return
		}
		if len(raw.Spec) == 0 {
			writeError(w, fmt.Errorf("%w: a sweep request needs a spec", noc.ErrInvalidSpec))
			return
		}
		req := SweepRequest{Rates: raw.Rates}
		if req.Spec, err = noc.ParseSpec(raw.Spec); err != nil {
			writeError(w, err)
			return
		}
		ctx, cancel := hc.requestCtx(r)
		defer cancel()
		results, err := b.Sweep(ctx, req.Spec, req.Rates)
		if err != nil {
			writeRequestError(w, r, ctx, err)
			return
		}
		resp := SweepResponse{
			Fingerprint: fmt.Sprintf("%016x", req.Spec.Fingerprint()),
			Points:      make([]SweepPoint, len(results)),
		}
		for i, res := range results {
			resp.Points[i] = SweepPoint{Rate: req.Rates[i], Result: res}
		}
		w.Header().Set(HeaderFingerprint, resp.Fingerprint)
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/trace/{fingerprint}", func(w http.ResponseWriter, r *http.Request) {
		fp, err := strconv.ParseUint(r.PathValue("fingerprint"), 16, 64)
		if err != nil {
			writeError(w, fmt.Errorf("%w: fingerprint must be the 16-digit hex content address: %w", noc.ErrInvalidSpec, err))
			return
		}
		ctx, cancel := hc.requestCtx(r)
		defer cancel()
		res, src, err := b.Trace(ctx, fp)
		if err != nil {
			writeRequestError(w, r, ctx, err)
			return
		}
		w.Header().Set(HeaderFingerprint, fmt.Sprintf("%016x", fp))
		w.Header().Set(HeaderSource, string(src))
		// The body is the full Result — the same document /v1/evaluate
		// served for this spec, series included — so offline recorder
		// output diffs against it bitwise.
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /dashboard", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(dashboardHTML)
	})
	mux.HandleFunc("GET /v1/registry", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Registry{
			Topologies: noc.Topologies(),
			Routers:    noc.Routers(),
			Patterns:   noc.Patterns(),
			Arrivals:   noc.Arrivals(),
			Spatials:   noc.Spatials(),
			Evaluators: []string{"model", "simulator"},
		})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		hs := b.Healthz()
		h := Health{
			Status:        hs.Status,
			Reason:        hs.Reason,
			UptimeSeconds: time.Since(start).Seconds(),
			Stats:         b.Stats(),
		}
		if pr, ok := b.(PeerReporter); ok {
			h.Peers = pr.PeerHealth()
		}
		status := http.StatusOK
		if hs.Status != StatusOK {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
	})
	return mux
}

// requestCtx derives the evaluation context: the request's own context,
// bounded by the configured per-evaluation deadline when one is set.
func (hc HandlerConfig) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if hc.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), hc.RequestTimeout)
}

// decodeSpec reads and strictly parses the request body as a Spec,
// writing the error response itself on failure.
func decodeSpec(w http.ResponseWriter, r *http.Request) (noc.Spec, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading request: %w", noc.ErrInvalidSpec, err))
		return noc.Spec{}, false
	}
	sp, err := noc.ParseSpec(body)
	if err != nil {
		writeError(w, err)
		return noc.Spec{}, false
	}
	return sp, true
}

// writeRequestError distinguishes the server-imposed evaluation
// deadline from a client cancelation before falling back to the shared
// status mapping: when the evaluation context hit its deadline while
// the client was still waiting, the request timed out server-side and
// the honest answer is 504 Gateway Timeout, not the client-gone 499.
func writeRequestError(w http.ResponseWriter, r *http.Request, ctx context.Context, err error) {
	if errors.Is(err, context.DeadlineExceeded) &&
		errors.Is(ctx.Err(), context.DeadlineExceeded) && r.Context().Err() == nil {
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error(), Code: CodeTimeout})
		return
	}
	writeError(w, err)
}

// writeError maps service/spec errors onto HTTP statuses and wire
// codes: client mistakes are 400s, an unknown fingerprint is 404, a
// closing or overloaded server is 503, cancellations map to the
// client-gone 499 convention, anything else is a 500.
func writeError(w http.ResponseWriter, err error) {
	code := errorCode(err)
	status := http.StatusInternalServerError
	switch code {
	case CodeInvalidSpec:
		status = http.StatusBadRequest
	case CodeNotFound:
		status = http.StatusNotFound
	case CodeDraining, CodeQueueSaturated:
		status = http.StatusServiceUnavailable
	case CodeCanceled, CodeTimeout:
		status = 499 // client closed request (nginx convention)
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
