package noc

import (
	"testing"
)

// FuzzSpecJSON throws hostile documents at the declarative codec. The
// contract under fuzzing:
//
//   - ParseSpec never panics and never lets an unbounded value through
//     (huge sizes, non-finite numbers, unknown fields, trailing data,
//     conflicting record+replay all return errors);
//   - a spec that parses always fingerprints, and its canonical encoding
//     reparses to the same fingerprint (the content address is a fixed
//     point);
//   - compiling a parsed spec to a Scenario may fail (unknown registry
//     names, sizes the topology refuses) but never panics.
//
// The seed corpus under testdata/fuzz/FuzzSpecJSON pins one document per
// hostile class.
func FuzzSpecJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"topology":"quarc","n":16,"rate":0.002,"alpha":0.05,"pattern":"localized","dests":4}`,
		`{"topology":"mesh","w":4,"h":4,"pattern":"highlow","high":[1,3],"low":[2],"arrival":"onoff","burst_len":8,"duty_cycle":0.5}`,
		`{"n":1000000000}`,
		`{"topology":"mesh","w":100000,"h":100000}`,
		`{"topology":"hypercube","dims":64}`,
		`{"rate":1e308,"alpha":2}`,
		`{"rate":-1}`,
		`{"warmup":-5,"measure":0}`,
		`{"record":"a.trace","replay":"b.trace"}`,
		`{"topology":"ring","n":16}`,
		`{"arrival":"bursty"}`,
		`{"spatial":"swirl","spatial_frac":-3}`,
		`{"unknown_field":1}`,
		`{"n":16} trailing`,
		`{"wait":"magic","service":"wizard","evaluator":"oracle"}`,
		`{"replications":-1,"parallelism":-1}`,
		`{"trace_node":-5,"trace_limit":9999999999}`,
		`[1,2,3]`,
		`"quarc"`,
		`{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			return // rejected is always acceptable; panicking is not
		}
		fp := sp.Fingerprint()
		cj, err := sp.CanonicalJSON()
		if err != nil {
			t.Fatalf("parsed spec failed to encode: %v", err)
		}
		back, err := ParseSpec(cj)
		if err != nil {
			t.Fatalf("canonical encoding %s failed to reparse: %v", cj, err)
		}
		if got := back.Fingerprint(); got != fp {
			t.Fatalf("fingerprint not preserved across canonical round-trip: %016x != %016x (%s)", got, fp, cj)
		}
		if sp.Record != "" || sp.Replay != "" {
			return // trace specs touch the filesystem; compile-checked elsewhere
		}
		// Compilation must not panic. Bound the per-execution cost: the
		// codec's own limit is 4096 nodes, which is safe but slow to
		// build thousands of times per second.
		if nodes := max(sp.N, sp.W*sp.H, 1<<min(sp.Dims, 12)); nodes > 512 {
			return
		}
		if s, err := sp.Scenario(); err == nil && s == nil {
			t.Fatal("nil scenario without error")
		}
	})
}
