package noc

import (
	"math"
	"testing"
)

// With must validate forks even on its fast path (topology and pattern
// unchanged), so a *Scenario is well-formed everywhere.
func TestWithValidatesFork(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(32), Rate(0.001))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.With(MsgLen(1)); err == nil {
		t.Error("With(MsgLen(1)) should fail")
	}
	if _, err := s.With(Rate(math.NaN())); err == nil {
		t.Error("With(Rate(NaN)) should fail")
	}
	if _, err := s.With(Alpha(0.5)); err == nil {
		t.Error("With(Alpha(0.5)) with an empty destination set should fail")
	}
	// A valid fork keeps working and shares the resolved network.
	ok, err := s.With(Rate(0.002))
	if err != nil {
		t.Fatal(err)
	}
	if ok.Rate() != 0.002 || ok.Nodes() != 16 {
		t.Errorf("fork: rate=%v nodes=%d", ok.Rate(), ok.Nodes())
	}
	if s.Rate() != 0.001 {
		t.Errorf("fork mutated the base scenario: rate=%v", s.Rate())
	}
}

func TestBranchesRequireSet(t *testing.T) {
	s, err := NewScenario(Quarc(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Branches(0); err == nil {
		t.Error("Branches on an empty destination set should fail")
	}

	b, err := NewScenario(Quarc(16), Alpha(1), Broadcast())
	if err != nil {
		t.Fatal(err)
	}
	branches, err := b.Branches(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 4 {
		t.Fatalf("broadcast from a quarc node should spawn 4 branches, got %d", len(branches))
	}
	covered := map[int]bool{}
	for _, br := range branches {
		for _, tgt := range br.Targets {
			if covered[tgt] {
				t.Errorf("node %d covered twice", tgt)
			}
			covered[tgt] = true
		}
	}
	if len(covered) != 15 {
		t.Errorf("broadcast covered %d nodes, want 15", len(covered))
	}
}

func TestModelDetailBranchWaits(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Rate(0.002), Alpha(0.1),
		Broadcast(), Detail(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Model{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Branches) != 4 {
		t.Fatalf("detail evaluation should report 4 branches, got %d", len(res.Branches))
	}
	for _, b := range res.Branches {
		if b.Wait <= 0 || math.IsNaN(b.Wait) {
			t.Errorf("branch %s wait = %v, want positive", b.PortName, b.Wait)
		}
	}
}
