package noc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"quarc/internal/experiments"
)

// SweepOptions controls a Sweep run.
type SweepOptions struct {
	// Rates lists the per-node generation rates to evaluate. When empty,
	// Points rates are auto-placed at 10%..95% of the model's saturation
	// rate, as the paper's figures do.
	Rates []float64
	// Points is the auto-grid size (default 8; ignored when Rates is
	// set).
	Points int
	// MsgLens optionally sweeps message sizes as well; the default is the
	// scenario's message length. The sweep covers the cross product
	// MsgLens x rates.
	MsgLens []int
	// Workers bounds the concurrent evaluations; <= 0 selects
	// GOMAXPROCS. Results are deterministic regardless of worker count.
	Workers int
	// Evaluators are run in order at every point; the default pair is
	// {Model{}, Simulator{}}.
	Evaluators []Evaluator
}

// SweepPoint is one (message length, rate) sample of a sweep, holding one
// result per evaluator in the order they were given.
type SweepPoint struct {
	MsgLen  int      `json:"msglen"`
	Rate    float64  `json:"rate"`
	Results []Result `json:"results"`
}

// Get returns the point's result for a named evaluator.
func (p SweepPoint) Get(name string) (Result, bool) {
	for _, r := range p.Results {
		if r.Evaluator == name {
			return r, true
		}
	}
	return Result{}, false
}

// SweepResult is a completed sweep.
type SweepResult struct {
	// Topology and Set identify the swept configuration.
	Topology string `json:"topology"`
	Set      string `json:"multicast_set"`
	// SatRate is the model's saturation rate the auto grid was scaled
	// to: the scenario's own message length when it is part of the
	// sweep, otherwise the first swept length. Zero when the sweep used
	// explicit rates.
	SatRate float64 `json:"model_saturation_rate,omitempty"`
	// Points are ordered by (MsgLen, Rate) in the input order.
	Points []SweepPoint `json:"points"`
}

// SaturationRate bisects for the highest generation rate at which the
// analytical model is stable for the scenario, within relative tolerance
// 1e-3. The paper's figures scale their rate grids to this boundary.
func SaturationRate(s *Scenario) (float64, error) {
	return experiments.FindSaturationRate(s.router, s.cfg.msgLen, s.cfg.alpha, s.set, 1e-3)
}

// Sweep evaluates the scenario across a rate (and optionally message-size)
// grid with a bounded worker pool, running every evaluator at every point.
// When the scenario carries Replications(n), every (point, replication)
// pair becomes one job on the same shared pool — replications of one
// point and different points interleave freely across workers — and each
// point's replications are aggregated in replication order, so results
// are deterministic for any worker count. It generalizes the figure-panel
// sweep: any scenario, any evaluator set, deterministic results in input
// order.
func Sweep(s *Scenario, o SweepOptions) (SweepResult, error) {
	if s.cfg.record != nil {
		// Every point of a sweep would race to overwrite the one shared
		// TraceWorkload, leaving whichever point finished last. A trace
		// is the capture of one run: record by evaluating a single
		// scenario instead.
		return SweepResult{}, fmt.Errorf("noc: trace recording inside a sweep is not supported (evaluate the scenario directly)")
	}
	if s.cfg.replay != nil {
		// A replayed workload ignores the swept rate axis entirely, so
		// every point would be the same run; a flat table with a working
		// rate column would misread as a real sweep.
		return SweepResult{}, fmt.Errorf("noc: trace replay inside a sweep is not supported (the trace fixes the workload, so every point would be identical)")
	}
	evals := o.Evaluators
	if len(evals) == 0 {
		evals = []Evaluator{Model{}, Simulator{}}
	}
	msgLens := o.MsgLens
	if len(msgLens) == 0 {
		msgLens = []int{s.cfg.msgLen}
	}
	reps := s.cfg.replications
	if reps < 1 {
		reps = 1
	}

	out := SweepResult{Topology: s.cfg.topoName, Set: s.SetString()}

	// Build the point grid. With explicit rates the grid is the plain
	// cross product; otherwise each message length gets its own grid
	// scaled to its saturation rate.
	type pointSpec struct {
		msgLen int
		rate   float64
	}
	var specs []pointSpec
	for _, msgLen := range msgLens {
		rates := o.Rates
		if len(rates) == 0 {
			sm, err := s.With(MsgLen(msgLen))
			if err != nil {
				return SweepResult{}, err
			}
			sat, err := SaturationRate(sm)
			if err != nil {
				return SweepResult{}, err
			}
			if msgLen == s.cfg.msgLen || out.SatRate == 0 {
				out.SatRate = sat
			}
			points := o.Points
			if points <= 0 {
				points = 8
			}
			rates = make([]float64, points)
			// Sample 10%..95% of the model's stable region; a single
			// point lands mid-region.
			step := 0.0
			if points > 1 {
				step = (0.95 - 0.10) / float64(points-1)
			}
			for i := range rates {
				frac := 0.10 + step*float64(i)
				if points == 1 {
					frac = 0.50
				}
				rates[i] = sat * frac
			}
		}
		for _, rate := range rates {
			specs = append(specs, pointSpec{msgLen: msgLen, rate: rate})
		}
	}

	// One job per (point, replication). Replication 0 runs every
	// evaluator; higher replications run only the replicating ones (the
	// deterministic Model would just repeat itself).
	type job struct {
		point, rep int
	}
	jobs := make([]job, 0, len(specs)*reps)
	for p := range specs {
		for r := 0; r < reps; r++ {
			jobs = append(jobs, job{point: p, rep: r})
		}
	}
	// raw[point][eval][rep] holds every run's result before aggregation.
	raw := make([][][]Result, len(specs))
	for p := range raw {
		raw[p] = make([][]Result, len(evals))
		for e := range evals {
			raw[p][e] = make([]Result, reps)
		}
	}

	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	errs := make([]error, len(jobs))
	// The job channel is buffered with every index up front and closed
	// before the workers start, so the feed can never block: a worker that
	// dies mid-job (it shouldn't — runJob recovers panics) cannot
	// deadlock the sweep. On the first error the remaining queued jobs are
	// skipped so a broken sweep fails fast.
	ch := make(chan int, len(jobs))
	for i := range jobs {
		ch <- i
	}
	close(ch)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker gets its own evaluator instances so stateful
			// evaluators (Simulator's reusable network) never race.
			evs := workerEvaluators(evals)
			for i := range ch {
				if failed.Load() {
					continue
				}
				j := jobs[i]
				errs[i] = runJob(s, specs[j.point].msgLen, specs[j.point].rate, j.rep, evs, raw[j.point])
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			j := jobs[i]
			return SweepResult{}, fmt.Errorf("noc: sweep point (msglen=%d, rate=%g, rep=%d): %w",
				specs[j.point].msgLen, specs[j.point].rate, j.rep, err)
		}
	}

	points := make([]SweepPoint, len(specs))
	for p, spec := range specs {
		pt := SweepPoint{MsgLen: spec.msgLen, Rate: spec.rate}
		for e, ev := range evals {
			if _, ok := ev.(replicator); ok && reps > 1 {
				pt.Results = append(pt.Results, aggregateReplications(raw[p][e]))
			} else {
				pt.Results = append(pt.Results, raw[p][e][0])
			}
		}
		points[p] = pt
	}
	out.Points = points
	return out, nil
}

// runJob evaluates one (point, replication) job into dst[eval][rep]. A
// panicking evaluator must not kill the process (and with it the whole
// sweep): surface it as the job's error instead.
func runJob(s *Scenario, msgLen int, rate float64, rep int, evals []Evaluator, dst [][]Result) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("evaluator panicked: %v", r)
		}
	}()
	sp, err := s.With(MsgLen(msgLen), Rate(rate))
	if err != nil {
		return err
	}
	for e, ev := range evals {
		if r, ok := ev.(replicator); ok {
			res, err := r.evaluateRep(sp, rep)
			if err != nil {
				return err
			}
			dst[e][rep] = res
			continue
		}
		if rep != 0 {
			continue // deterministic evaluators run once, on replication 0
		}
		res, err := ev.Evaluate(sp)
		if err != nil {
			return err
		}
		dst[e][rep] = res
	}
	return nil
}

// workerForker is implemented by evaluators that want a private, stateful
// instance per Sweep worker (e.g. Simulator, which keeps a reusable
// network). Stateless evaluators are shared as-is.
type workerForker interface {
	forkWorker() Evaluator
}

// workerEvaluators returns the evaluator list for one worker goroutine,
// forking the evaluators that carry per-worker state.
func workerEvaluators(evals []Evaluator) []Evaluator {
	out := make([]Evaluator, len(evals))
	for i, ev := range evals {
		if f, ok := ev.(workerForker); ok {
			out[i] = f.forkWorker()
		} else {
			out[i] = ev
		}
	}
	return out
}
