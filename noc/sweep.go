package noc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"quarc/internal/experiments"
)

// SweepOptions controls a Sweep run.
type SweepOptions struct {
	// Rates lists the per-node generation rates to evaluate. When empty,
	// Points rates are auto-placed at 10%..95% of the model's saturation
	// rate, as the paper's figures do.
	Rates []float64
	// Points is the auto-grid size (default 8; ignored when Rates is
	// set).
	Points int
	// MsgLens optionally sweeps message sizes as well; the default is the
	// scenario's message length. The sweep covers the cross product
	// MsgLens x rates.
	MsgLens []int
	// Workers bounds the concurrent evaluations; <= 0 selects
	// GOMAXPROCS. Results are deterministic regardless of worker count.
	Workers int
	// Evaluators are run in order at every point; the default pair is
	// {Model{}, Simulator{}}.
	Evaluators []Evaluator
}

// SweepPoint is one (message length, rate) sample of a sweep, holding one
// result per evaluator in the order they were given.
type SweepPoint struct {
	MsgLen  int      `json:"msglen"`
	Rate    float64  `json:"rate"`
	Results []Result `json:"results"`
}

// Get returns the point's result for a named evaluator.
func (p SweepPoint) Get(name string) (Result, bool) {
	for _, r := range p.Results {
		if r.Evaluator == name {
			return r, true
		}
	}
	return Result{}, false
}

// SweepResult is a completed sweep.
type SweepResult struct {
	// Topology and Set identify the swept configuration.
	Topology string `json:"topology"`
	Set      string `json:"multicast_set"`
	// SatRate is the model's saturation rate the auto grid was scaled
	// to: the scenario's own message length when it is part of the
	// sweep, otherwise the first swept length. Zero when the sweep used
	// explicit rates.
	SatRate float64 `json:"model_saturation_rate,omitempty"`
	// Points are ordered by (MsgLen, Rate) in the input order.
	Points []SweepPoint `json:"points"`
}

// SaturationRate bisects for the highest generation rate at which the
// analytical model is stable for the scenario, within relative tolerance
// 1e-3. The paper's figures scale their rate grids to this boundary.
func SaturationRate(s *Scenario) (float64, error) {
	return experiments.FindSaturationRate(s.router, s.cfg.msgLen, s.cfg.alpha, s.set, 1e-3)
}

// Sweep evaluates the scenario across a rate (and optionally message-size)
// grid with a bounded worker pool, running every evaluator at every point.
// It generalizes the figure-panel sweep: any scenario, any evaluator set,
// deterministic results in input order.
func Sweep(s *Scenario, o SweepOptions) (SweepResult, error) {
	evals := o.Evaluators
	if len(evals) == 0 {
		evals = []Evaluator{Model{}, Simulator{}}
	}
	msgLens := o.MsgLens
	if len(msgLens) == 0 {
		msgLens = []int{s.cfg.msgLen}
	}

	out := SweepResult{Topology: s.cfg.topoName, Set: s.SetString()}

	// Build the job grid. With explicit rates the grid is the plain cross
	// product; otherwise each message length gets its own grid scaled to
	// its saturation rate.
	type job struct {
		msgLen int
		rate   float64
	}
	var jobs []job
	for _, msgLen := range msgLens {
		rates := o.Rates
		if len(rates) == 0 {
			sm, err := s.With(MsgLen(msgLen))
			if err != nil {
				return SweepResult{}, err
			}
			sat, err := SaturationRate(sm)
			if err != nil {
				return SweepResult{}, err
			}
			if msgLen == s.cfg.msgLen || out.SatRate == 0 {
				out.SatRate = sat
			}
			points := o.Points
			if points <= 0 {
				points = 8
			}
			rates = make([]float64, points)
			// Sample 10%..95% of the model's stable region; a single
			// point lands mid-region.
			step := 0.0
			if points > 1 {
				step = (0.95 - 0.10) / float64(points-1)
			}
			for i := range rates {
				frac := 0.10 + step*float64(i)
				if points == 1 {
					frac = 0.50
				}
				rates[i] = sat * frac
			}
		}
		for _, rate := range rates {
			jobs = append(jobs, job{msgLen: msgLen, rate: rate})
		}
	}

	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	points := make([]SweepPoint, len(jobs))
	errs := make([]error, len(jobs))
	// The job channel is buffered with every index up front and closed
	// before the workers start, so the feed can never block: a worker that
	// dies mid-job (it shouldn't — runPoint recovers panics) cannot
	// deadlock the sweep. On the first error the remaining queued jobs are
	// skipped so a broken sweep fails fast.
	ch := make(chan int, len(jobs))
	for i := range jobs {
		ch <- i
	}
	close(ch)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker gets its own evaluator instances so stateful
			// evaluators (Simulator's reusable network) never race.
			evs := workerEvaluators(evals)
			for i := range ch {
				if failed.Load() {
					continue
				}
				points[i], errs[i] = runPoint(s, jobs[i].msgLen, jobs[i].rate, evs)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return SweepResult{}, fmt.Errorf("noc: sweep point (msglen=%d, rate=%g): %w",
				jobs[i].msgLen, jobs[i].rate, err)
		}
	}
	out.Points = points
	return out, nil
}

// workerForker is implemented by evaluators that want a private, stateful
// instance per Sweep worker (e.g. Simulator, which keeps a reusable
// network). Stateless evaluators are shared as-is.
type workerForker interface {
	forkWorker() Evaluator
}

// workerEvaluators returns the evaluator list for one worker goroutine,
// forking the evaluators that carry per-worker state.
func workerEvaluators(evals []Evaluator) []Evaluator {
	out := make([]Evaluator, len(evals))
	for i, ev := range evals {
		if f, ok := ev.(workerForker); ok {
			out[i] = f.forkWorker()
		} else {
			out[i] = ev
		}
	}
	return out
}

func runPoint(s *Scenario, msgLen int, rate float64, evals []Evaluator) (pt SweepPoint, err error) {
	// A panicking evaluator must not kill the process (and with it the
	// whole sweep): surface it as the point's error instead.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("evaluator panicked: %v", r)
		}
	}()
	sp, err := s.With(MsgLen(msgLen), Rate(rate))
	if err != nil {
		return SweepPoint{}, err
	}
	pt = SweepPoint{MsgLen: msgLen, Rate: rate}
	for _, ev := range evals {
		r, err := ev.Evaluate(sp)
		if err != nil {
			return SweepPoint{}, err
		}
		pt.Results = append(pt.Results, r)
	}
	return pt, nil
}
