// Package noc is the public entry point of the Quarc NoC performance
// study: one declarative Scenario type drives both the paper's analytical
// M/G/1 wormhole model and the discrete-event wormhole simulator, and both
// return the same Result type.
//
// A scenario is assembled from functional options over string-keyed
// registries of topologies, routers and traffic patterns:
//
//	s, err := noc.NewScenario(
//		noc.Quarc(64),
//		noc.MsgLen(32),
//		noc.Rate(0.001),
//		noc.Alpha(0.05),
//		noc.RandomDests(8, 1),
//	)
//	pred, err := noc.Model{}.Evaluate(s)     // paper Eqs. 3-16
//	meas, err := noc.Simulator{}.Evaluate(s) // discrete-event simulation
//
// Evaluator is the common interface; Sweep runs any evaluator set across a
// rate (and message-size) grid with a bounded worker pool. The figure
// panels of the paper's evaluation are exposed through FigurePanels and
// RunFigurePanels, and the DESIGN.md §7 ablation studies through
// OnePortAblation, SpidergonComparison, MeshExtension and
// ServiceFormulaAblation.
//
// The registries are open: RegisterTopology, RegisterRouter and
// RegisterPattern add named builders that NewScenario resolves by name, so
// new scenarios stay declarative. Topologies(), Routers() and Patterns()
// enumerate what is available.
//
// Spec is the fully declarative, JSON-able form of a scenario: every
// builtin option has a Spec field, Spec.Scenario compiles it, and the
// canonical encoding's FNV-1a Fingerprint content-addresses its Result —
// the key the noc/service layer (and the quarcd daemon) cache and
// deduplicate evaluations under. ParseSpec is the strict entry point for
// untrusted documents.
package noc
