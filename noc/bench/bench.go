// Package bench is the performance harness of the simulation stack. It
// defines the benchmark suite (raw engine throughput, one full network
// run fresh vs reused, and a whole sweep) both as ordinary `go test
// -bench` benchmarks and as a programmatic suite the cmd/bench binary can
// run and serialize, so BENCH_*.json snapshots accumulate a performance
// trajectory across PRs (see EXPERIMENTS.md).
package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"testing"
	"time"

	"quarc/internal/obs"
	"quarc/internal/routing"
	"quarc/internal/sim"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
	"quarc/noc"
)

// Case is one named benchmark of the suite.
type Case struct {
	Name string
	Run  func(b *testing.B)
}

// Record is the serialized outcome of one Case.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document cmd/bench writes.
type Report struct {
	Label     string   `json:"label,omitempty"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Cases     []Record `json:"cases"`
}

// Suite returns the benchmark cases in a fixed order. The first four
// names match the PR 2 baseline so `cmd/bench -baseline` can diff them;
// later cases extend the suite (replication fan-out, sweep scaling).
func Suite() []Case {
	return []Case{
		{Name: "Engine", Run: benchEngine},
		{Name: "NetworkRun/fresh", Run: benchNetworkRunFresh},
		{Name: "NetworkRun/reuse", Run: benchNetworkRunReuse},
		{Name: "Sweep", Run: benchSweep},
		{Name: "Replications", Run: benchReplications},
		{Name: "SweepScaling", Run: benchSweepScaling},
		{Name: "NetworkRun/onoff", Run: benchNetworkRunOnOff},
		{Name: "Replay", Run: benchReplay},
		{Name: "NetworkRun/noop-hook", Run: benchNetworkRunNoopHook},
		{Name: "NetworkRun/metrics", Run: benchNetworkRunMetrics},
		{Name: "NetworkRun/mesh8", Run: benchNetworkRunMesh8},
		{Name: "NetworkRun/par-2", Run: benchNetworkRunPar(2)},
		{Name: "NetworkRun/par-4", Run: benchNetworkRunPar(4)},
		{Name: "NetworkRun/par-8", Run: benchNetworkRunPar(8)},
	}
}

// Measure runs every case through testing.Benchmark and collects records.
func Measure(cases []Case) []Record {
	out := make([]Record, 0, len(cases))
	for _, c := range cases {
		r := testing.Benchmark(c.Run)
		rec := Record{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			rec.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				rec.Metrics[k] = v
			}
		}
		out = append(out, rec)
	}
	return out
}

// WriteJSON serializes the records, stamped with the build environment.
func WriteJSON(w io.Writer, label string, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{
		Label:     label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Cases:     recs,
	})
}

// tickHandler perpetuates every typed event it receives one cycle later —
// the minimal self-sustaining event loop, measuring pure engine overhead.
type tickHandler struct{}

func (tickHandler) Handle(e *sim.Engine, ev sim.Event) {
	e.Schedule(e.Now()+1, ev)
}

// benchEngine measures raw typed-event throughput: 64 concurrent event
// chains, one event per op. The steady-state loop must not allocate.
func benchEngine(b *testing.B) {
	eng := sim.New()
	eng.SetHandler(tickHandler{})
	const chains = 64
	for i := 0; i < chains; i++ {
		eng.Schedule(1, sim.Event{Kind: 1, Arg: int32(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run(float64(b.N)/chains + 1)
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(eng.Fired())/s, "events/sec")
	}
}

// benchSetup is the shared mid-load quarc-16 configuration; it matches the
// pre-change baseline recorded in EXPERIMENTS.md, so allocs/op here track
// the hot-path allocation trajectory.
func benchSetup(b *testing.B) (*routing.QuarcRouter, traffic.Spec, wormhole.Config) {
	b.Helper()
	q, err := topology.NewQuarc(16)
	if err != nil {
		b.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.LocalizedSet(topology.PortL, 4)
	if err != nil {
		b.Fatal(err)
	}
	spec := traffic.Spec{Rate: 0.004, MulticastFrac: 0.05, Set: set}
	return rt, spec, wormhole.Config{MsgLen: 32, Warmup: 1000, Measure: 10000}
}

// benchNetworkRunFresh rebuilds the network every iteration — the cost a
// sweep point paid before Network.Reset existed.
func benchNetworkRunFresh(b *testing.B) {
	rt, spec, cfg := benchSetup(b)
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := traffic.NewWorkload(rt, spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		nw, err := wormhole.New(rt.Graph(), w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += nw.Run().Events
	}
	b.StopTimer()
	reportEventRate(b, events)
}

// benchNetworkRunReuse resets one network and one workload per iteration
// — the pooled sweep-worker path, which skips both the per-point network
// construction and the O(n²) route precomputation.
func benchNetworkRunReuse(b *testing.B) {
	rt, spec, cfg := benchSetup(b)
	w, err := traffic.NewWorkload(rt, spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Reset(spec, 1); err != nil {
			b.Fatal(err)
		}
		if err := nw.Reset(w, cfg); err != nil {
			b.Fatal(err)
		}
		events += nw.Run().Events
	}
	b.StopTimer()
	reportEventRate(b, events)
}

// benchNetworkRunOnOff is the reuse path under the bursty on/off arrival
// process and a tornado permutation — the workload-diversity subsystem's
// hot-path cost relative to NetworkRun/reuse (poisson/uniform).
func benchNetworkRunOnOff(b *testing.B) {
	rt, spec, cfg := benchSetup(b)
	n := rt.Graph().Nodes()
	spec.Arrival = "onoff"
	spec.BurstLen, spec.DutyCycle = 8, 0.25
	spec.MulticastFrac = 0
	spec.Set = routing.MulticastSet{}
	perm := make([]topology.NodeID, n)
	shift := (n+1)/2 - 1
	for i := range perm {
		perm[i] = topology.NodeID((i + shift) % n)
	}
	spec.Perm = perm
	w, err := traffic.NewWorkload(rt, spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Reset(spec, 1); err != nil {
			b.Fatal(err)
		}
		if err := nw.Reset(w, cfg); err != nil {
			b.Fatal(err)
		}
		events += nw.Run().Events
	}
	b.StopTimer()
	reportEventRate(b, events)
}

// benchReplay measures trace-driven runs: one recorded mid-load run
// replayed per iteration (replayer construction included; the route
// tables come from the shared per-router caches).
func benchReplay(b *testing.B) {
	rt, spec, cfg := benchSetup(b)
	w, err := traffic.NewWorkload(rt, spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	rec := traffic.NewRecorder(w)
	nw, err := wormhole.New(rt.Graph(), rec, cfg)
	if err != nil {
		b.Fatal(err)
	}
	nw.Run()
	tr := rec.Trace()
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp, err := traffic.NewReplayer(rt, spec.Set, tr)
		if err != nil {
			b.Fatal(err)
		}
		if err := nw.Reset(rp, cfg); err != nil {
			b.Fatal(err)
		}
		events += nw.Run().Events
	}
	b.StopTimer()
	reportEventRate(b, events)
}

// noopHook subscribes to every position and does nothing: the pure
// dispatch overhead of an enabled hook layer.
type noopHook struct{}

func (noopHook) Func(wormhole.HookCtx) {}

// benchNetworkRunNoopHook is the reuse path with a no-op hook attached
// at every position — the marginal cost of hook dispatch itself,
// against NetworkRun/reuse as the hooks-disabled baseline.
func benchNetworkRunNoopHook(b *testing.B) {
	rt, spec, cfg := benchSetup(b)
	w, err := traffic.NewWorkload(rt, spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Reset(spec, 1); err != nil {
			b.Fatal(err)
		}
		if err := nw.Reset(w, cfg); err != nil {
			b.Fatal(err)
		}
		nw.Attach(noopHook{})
		events += nw.Run().Events
	}
	b.StopTimer()
	reportEventRate(b, events)
}

// benchNetworkRunMetrics is the reuse path under full metrics
// recording: a batched collector draining every position into an
// in-memory sink — the whole observability pipeline's per-run cost.
func benchNetworkRunMetrics(b *testing.B) {
	rt, spec, cfg := benchSetup(b)
	w, err := traffic.NewWorkload(rt, spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	var records int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Reset(spec, 1); err != nil {
			b.Fatal(err)
		}
		if err := nw.Reset(w, cfg); err != nil {
			b.Fatal(err)
		}
		sink := obs.NewMemorySink()
		coll := obs.NewCollector(sink, 0)
		nw.Attach(coll)
		events += nw.Run().Events
		if err := coll.Flush(); err != nil {
			b.Fatal(err)
		}
		records += int64(sink.Len())
	}
	b.StopTimer()
	reportEventRate(b, events)
	if b.N > 0 {
		b.ReportMetric(float64(records)/float64(b.N), "records/op")
	}
}

// parBenchSetup is the mesh-8x8 unicast mid-load configuration shared
// by the serial baseline (NetworkRun/mesh8) and the parallel cases
// (NetworkRun/par-N) — the speedup scenario tracked in EXPERIMENTS.md.
// Mesh rather than quarc: row-band partitions of a large mesh give the
// conservative windows the most local work per cross-seam channel.
func parBenchSetup(b *testing.B) (*routing.MeshRouter, traffic.Spec, wormhole.Config) {
	b.Helper()
	m, err := topology.NewMesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	rt := routing.NewMeshRouter(m)
	spec := traffic.Spec{Rate: 0.0015}
	return rt, spec, wormhole.Config{MsgLen: 8, Warmup: 1000, Measure: 10000}
}

// benchNetworkRunMesh8 is the serial reuse path on the parallel cases'
// exact configuration: the baseline the NetworkRun/par-N speedups are
// computed against (cmd/bench -parallel-speedup).
func benchNetworkRunMesh8(b *testing.B) {
	rt, spec, cfg := parBenchSetup(b)
	w, err := traffic.NewWorkload(rt, spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Reset(spec, 1); err != nil {
			b.Fatal(err)
		}
		if err := nw.Reset(w, cfg); err != nil {
			b.Fatal(err)
		}
		events += nw.Run().Events
	}
	b.StopTimer()
	reportEventRate(b, events)
}

// benchNetworkRunPar is the conservative parallel engine on the same
// configuration, one case per shard count. Results are bitwise-equal to
// the serial baseline (the differential battery pins that); what this
// case measures is the window-synchronization cost and, with cores to
// spare, the speedup.
func benchNetworkRunPar(p int) func(b *testing.B) {
	return func(b *testing.B) {
		rt, spec, cfg := parBenchSetup(b)
		w, err := traffic.NewWorkload(rt, spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		nw, err := wormhole.New(rt.Graph(), w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var events uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Reset(spec, 1); err != nil {
				b.Fatal(err)
			}
			if err := nw.Reset(w, cfg); err != nil {
				b.Fatal(err)
			}
			r, ok := nw.RunParallel(p)
			if !ok {
				b.Fatal("parallel run aborted on an unsaturated workload")
			}
			events += r.Events
		}
		b.StopTimer()
		// No events/sec metric, deliberately: like SweepScaling, a
		// scaling case's throughput is scheduler-bound and too noisy
		// for the CI speed gate (spin-barrier rounds swing ~30% on a
		// busy single-core runner). The speedup column derives from
		// ns/op against NetworkRun/mesh8.
		if events == 0 {
			b.Fatal("parallel runs fired no events")
		}
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
	}
}

func reportEventRate(b *testing.B, events uint64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

// benchReplications fans 8 seeded replications of one simulator point
// across GOMAXPROCS workers — the Replications/Parallelism scenario path.
func benchReplications(b *testing.B) {
	s, err := noc.NewScenario(
		noc.Quarc(16), noc.MsgLen(32), noc.Rate(0.004), noc.Alpha(0.05),
		noc.LocalizedDests(noc.PortL, 4),
		noc.Warmup(1000), noc.Measure(10000), noc.Seed(7),
		noc.Replications(8),
	)
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := noc.Simulator{}.Evaluate(s)
		if err != nil {
			b.Fatal(err)
		}
		events += r.Events
	}
	b.StopTimer()
	reportEventRate(b, events)
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// benchSweepScaling runs one 4-point x 4-replication simulator sweep
// serially and with GOMAXPROCS workers per iteration, reporting the
// wall-clock speedup — the sweep-scaling trajectory metric.
func benchSweepScaling(b *testing.B) {
	s, err := noc.NewScenario(
		noc.Quarc(16), noc.MsgLen(32), noc.Alpha(0.05), noc.LocalizedDests(noc.PortL, 4),
		noc.Warmup(1000), noc.Measure(10000), noc.Seed(7),
		noc.Replications(4),
	)
	if err != nil {
		b.Fatal(err)
	}
	rates := []float64{0.001, 0.002, 0.003, 0.004}
	sims := []noc.Evaluator{noc.Simulator{}}
	workers := runtime.GOMAXPROCS(0)
	var serial, parallel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := noc.Sweep(s, noc.SweepOptions{Rates: rates, Workers: 1, Evaluators: sims}); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if _, err := noc.Sweep(s, noc.SweepOptions{Rates: rates, Workers: workers, Evaluators: sims}); err != nil {
			b.Fatal(err)
		}
		serial += t1.Sub(t0)
		parallel += time.Since(t1)
	}
	b.StopTimer()
	if parallel > 0 {
		b.ReportMetric(float64(serial)/float64(parallel), "speedup")
	}
	b.ReportMetric(float64(workers), "workers")
}

// benchSweep runs a small model+simulator sweep per iteration, exercising
// the worker pool and the per-worker network reuse end to end.
func benchSweep(b *testing.B) {
	s, err := noc.NewScenario(
		noc.Quarc(16), noc.MsgLen(16), noc.Alpha(0.05), noc.LocalizedDests(noc.PortL, 3),
		noc.Warmup(500), noc.Measure(5000), noc.Seed(3),
	)
	if err != nil {
		b.Fatal(err)
	}
	opts := noc.SweepOptions{Rates: []float64{0.001, 0.002, 0.004}, Workers: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noc.Sweep(s, opts); err != nil {
			b.Fatal(err)
		}
	}
}
