package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The benchmark entry points delegate to the suite bodies so that `go test
// -bench` and the cmd/bench JSON snapshots measure exactly the same code.

func BenchmarkEngine(b *testing.B) { benchEngine(b) }

func BenchmarkNetworkRun(b *testing.B) {
	b.Run("fresh", benchNetworkRunFresh)
	b.Run("reuse", benchNetworkRunReuse)
	b.Run("onoff", benchNetworkRunOnOff)
	b.Run("mesh8", benchNetworkRunMesh8)
	b.Run("par-2", benchNetworkRunPar(2))
	b.Run("par-4", benchNetworkRunPar(4))
	b.Run("par-8", benchNetworkRunPar(8))
}

func BenchmarkReplay(b *testing.B) { benchReplay(b) }

func BenchmarkSweep(b *testing.B) { benchSweep(b) }

func BenchmarkReplications(b *testing.B) { benchReplications(b) }

func BenchmarkSweepScaling(b *testing.B) { benchSweepScaling(b) }

func TestSuiteNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Suite() {
		if c.Name == "" || c.Run == nil {
			t.Fatalf("suite case %+v incomplete", c)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestWriteJSON(t *testing.T) {
	recs := []Record{
		{Name: "Engine", Iterations: 100, NsPerOp: 42.5, AllocsPerOp: 0,
			Metrics: map[string]float64{"events/sec": 1e6}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "test-label", recs); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("cmd/bench output is not valid JSON: %v", err)
	}
	if rep.Label != "test-label" || len(rep.Cases) != 1 || rep.Cases[0].Name != "Engine" {
		t.Fatalf("round-trip mismatch: %+v", rep)
	}
	if !strings.HasPrefix(rep.GoVersion, "go") {
		t.Fatalf("go version not stamped: %q", rep.GoVersion)
	}
	if rep.Cases[0].Metrics["events/sec"] != 1e6 {
		t.Fatalf("custom metrics lost: %+v", rep.Cases[0].Metrics)
	}
}
