package noc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
)

// Spec is the declarative, JSON-able description of a scenario: every
// builtin Option has a Spec field, so a scenario can be built either
// programmatically (functional options) or from data (a JSON document on
// the quarcsim command line or the quarcd wire). The two construction
// paths are pinned bitwise-equivalent by TestSpecMatchesOptions.
//
// Zero fields select the same defaults NewScenario uses (quarc-16,
// msglen 32, poisson arrivals, uniform unicasts, seed 1, warmup 10000,
// measure 100000). Canonical materializes those defaults and clears
// fields the chosen registries do not read, so specs that describe the
// same scenario share one canonical encoding — and therefore one
// Fingerprint, the content address under which noc/service caches
// Results.
type Spec struct {
	// Topology and router (Topology, Router options). N sizes quarc and
	// spidergon rings, W/H size meshes and tori, Dims sizes hypercubes.
	Topology string `json:"topology,omitempty"`
	N        int    `json:"n,omitempty"`
	W        int    `json:"w,omitempty"`
	H        int    `json:"h,omitempty"`
	Dims     int    `json:"dims,omitempty"`
	Router   string `json:"router,omitempty"`

	// Multicast traffic pattern (Pattern and the named wrappers). Dests
	// is PatternConfig.K; SetSeed seeds the "random" pattern; Port picks
	// the rim for "localized"; High/Low are the "highlow" offsets.
	Pattern string `json:"pattern,omitempty"`
	Dests   int    `json:"dests,omitempty"`
	Port    int    `json:"port,omitempty"`
	SetSeed uint64 `json:"set_seed,omitempty"`
	High    []int  `json:"high,omitempty"`
	Low     []int  `json:"low,omitempty"`

	// Workload (MsgLen, Rate, Alpha, Hotspot options).
	MsgLen      int     `json:"msglen,omitempty"`
	Rate        float64 `json:"rate,omitempty"`
	Alpha       float64 `json:"alpha,omitempty"`
	HotspotFrac float64 `json:"hotspot_frac,omitempty"`
	HotspotNode int     `json:"hotspot_node,omitempty"`

	// Arrival process (Arrival, OnOff options). BurstLen and DutyCycle
	// are read only by "onoff".
	Arrival   string  `json:"arrival,omitempty"`
	BurstLen  float64 `json:"burst_len,omitempty"`
	DutyCycle float64 `json:"duty_cycle,omitempty"`

	// Spatial unicast-destination pattern (Spatial, Permutation,
	// HotspotDests options). The Spatial* fields parameterize "hotspot".
	Spatial        string    `json:"spatial,omitempty"`
	SpatialFrac    float64   `json:"spatial_frac,omitempty"`
	SpatialNodes   []int     `json:"spatial_nodes,omitempty"`
	SpatialWeights []float64 `json:"spatial_weights,omitempty"`

	// Analytical-model knobs (ModelDamping, ModelMaxIter, ModelTol,
	// ModelWait, ModelService options). Wait is "pk" or "eq3"; Service is
	// "eq6" or "tail".
	Damping float64 `json:"damping,omitempty"`
	MaxIter int     `json:"max_iter,omitempty"`
	Tol     float64 `json:"tol,omitempty"`
	Wait    string  `json:"wait,omitempty"`
	Service string  `json:"service,omitempty"`

	// Simulator knobs (Seed, Warmup, Measure, SatQueue, Drain, Detail,
	// MulticastPriority, Trace, Replications, Parallelism options). A
	// zero Seed/Warmup/Measure selects the default (1 / 10000 / 100000);
	// TraceLimit > 0 enables tracing of TraceNode's messages.
	// Parallelism is execution advice, not content: it never changes the
	// Result, so Canonical clears it and it does not enter the
	// Fingerprint.
	Seed              uint64  `json:"seed,omitempty"`
	Warmup            float64 `json:"warmup,omitempty"`
	Measure           float64 `json:"measure,omitempty"`
	SatQueue          int     `json:"sat_queue,omitempty"`
	Drain             bool    `json:"drain,omitempty"`
	Detail            bool    `json:"detail,omitempty"`
	MulticastPriority bool    `json:"mc_priority,omitempty"`
	TraceNode         int     `json:"trace_node,omitempty"`
	TraceLimit        int     `json:"trace_limit,omitempty"`
	Replications      int     `json:"replications,omitempty"`
	Parallelism       int     `json:"parallelism,omitempty"`
	// IntraParallelism shards a single run across the conservative
	// parallel engine (the IntraParallelism option). Like Parallelism it
	// is execution advice with a bitwise-invariant Result, so Canonical
	// clears it and it never perturbs the Fingerprint.
	IntraParallelism int `json:"intra_parallelism,omitempty"`

	// Metrics enables time-series recording (the Metrics option):
	// Result.Series carries MetricsBuckets buckets of per-channel
	// utilization, injection/ejection counts and latency sums. A zero
	// MetricsBuckets under Metrics selects DefaultMetricsBuckets. Sinks
	// (MetricsSink) are process-local and have no Spec form.
	Metrics        bool `json:"metrics,omitempty"`
	MetricsBuckets int  `json:"metrics_buckets,omitempty"`

	// Evaluator names the engine a serving layer should run: "simulator"
	// (the default) or "model". Scenario construction ignores it — the
	// same Scenario drives either engine — but it is part of the content
	// address, since the two engines produce different Results.
	Evaluator string `json:"evaluator,omitempty"`

	// Record and Replay are trace file paths (the -record/-replay CLI
	// flags in declarative form). They are CLI-side: Scenario resolves
	// them against the local filesystem, and noc/service refuses specs
	// that set either one.
	Record string `json:"record,omitempty"`
	Replay string `json:"replay,omitempty"`
}

// ErrInvalidSpec marks a Spec whose fields are outside the ranges the
// codec accepts (hostile sizes, non-finite rates, unknown enum names).
// Match it with errors.Is.
var ErrInvalidSpec = errors.New("noc: invalid spec")

// Bounds on hostile Spec input. They are far above anything the paper's
// evaluation (or a sane NoC) needs, and low enough that a malicious JSON
// document cannot make Scenario allocate unbounded memory.
const (
	maxSpecNodes        = 4096
	maxSpecDims         = 12
	maxSpecMsgLen       = 1 << 16
	maxSpecList         = 4096
	maxSpecWindow       = 1e9
	maxSpecRate         = 1e6
	maxSpecIter         = 1e7
	maxSpecTraceLimit   = 1 << 20
	maxSpecReplications = 1 << 12
)

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Validate bounds every field of the spec. It runs before Canonical and
// Scenario, so hostile documents (huge sizes, NaN/Inf rates, absurd
// windows) are rejected here with ErrInvalidSpec instead of exhausting
// memory downstream. Names are only checked against closed enums (wait,
// service, evaluator); registry names are resolved — and rejected — when
// the scenario is built.
func (sp Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidSpec, fmt.Sprintf(format, args...))
	}
	if sp.N < 0 || sp.N > maxSpecNodes {
		return fail("n %d outside [0, %d]", sp.N, maxSpecNodes)
	}
	if sp.W < 0 || sp.W > maxSpecNodes || sp.H < 0 || sp.H > maxSpecNodes {
		return fail("mesh dimensions %dx%d outside [0, %d]", sp.W, sp.H, maxSpecNodes)
	}
	if sp.W*sp.H > maxSpecNodes {
		return fail("mesh %dx%d exceeds %d nodes", sp.W, sp.H, maxSpecNodes)
	}
	if sp.Dims < 0 || sp.Dims > maxSpecDims {
		return fail("hypercube dims %d outside [0, %d]", sp.Dims, maxSpecDims)
	}
	if sp.Dests < 0 || sp.Dests > maxSpecNodes {
		return fail("dests %d outside [0, %d]", sp.Dests, maxSpecNodes)
	}
	if sp.Port < 0 || sp.Port > 64 {
		return fail("port %d outside [0, 64]", sp.Port)
	}
	if len(sp.High) > maxSpecList || len(sp.Low) > maxSpecList {
		return fail("high/low offset lists longer than %d", maxSpecList)
	}
	if sp.MsgLen < 0 || sp.MsgLen > maxSpecMsgLen {
		return fail("msglen %d outside [0, %d]", sp.MsgLen, maxSpecMsgLen)
	}
	if !finite(sp.Rate) || sp.Rate < 0 || sp.Rate > maxSpecRate {
		return fail("rate %v outside [0, %g]", sp.Rate, float64(maxSpecRate))
	}
	if !finite(sp.Alpha) || sp.Alpha < 0 || sp.Alpha > 1 {
		return fail("alpha %v outside [0, 1]", sp.Alpha)
	}
	if !finite(sp.HotspotFrac) || sp.HotspotFrac < 0 || sp.HotspotFrac > 1 {
		return fail("hotspot_frac %v outside [0, 1]", sp.HotspotFrac)
	}
	if sp.HotspotNode < 0 || sp.HotspotNode > maxSpecNodes {
		return fail("hotspot_node %d outside [0, %d]", sp.HotspotNode, maxSpecNodes)
	}
	if !finite(sp.BurstLen) || sp.BurstLen < 0 || sp.BurstLen > 1e9 {
		return fail("burst_len %v outside [0, 1e9]", sp.BurstLen)
	}
	if !finite(sp.DutyCycle) || sp.DutyCycle < 0 || sp.DutyCycle > 1 {
		return fail("duty_cycle %v outside [0, 1]", sp.DutyCycle)
	}
	if !finite(sp.SpatialFrac) || sp.SpatialFrac < 0 || sp.SpatialFrac > 1 {
		return fail("spatial_frac %v outside [0, 1]", sp.SpatialFrac)
	}
	if len(sp.SpatialNodes) > maxSpecList || len(sp.SpatialWeights) > maxSpecList {
		return fail("spatial node/weight lists longer than %d", maxSpecList)
	}
	for _, w := range sp.SpatialWeights {
		if !finite(w) {
			return fail("non-finite spatial weight %v", w)
		}
	}
	if !finite(sp.Damping) || sp.Damping < 0 || sp.Damping > 1 {
		return fail("damping %v outside [0, 1]", sp.Damping)
	}
	if sp.MaxIter < 0 || sp.MaxIter > maxSpecIter {
		return fail("max_iter %d outside [0, %d]", sp.MaxIter, int(maxSpecIter))
	}
	if !finite(sp.Tol) || sp.Tol < 0 || sp.Tol > 1 {
		return fail("tol %v outside [0, 1]", sp.Tol)
	}
	switch sp.Wait {
	case "", "pk", "eq3":
	default:
		return fail("wait %q is not \"pk\" or \"eq3\"", sp.Wait)
	}
	switch sp.Service {
	case "", "eq6", "tail":
	default:
		return fail("service %q is not \"eq6\" or \"tail\"", sp.Service)
	}
	if !finite(sp.Warmup) || sp.Warmup < 0 || sp.Warmup > maxSpecWindow {
		return fail("warmup %v outside [0, %g]", sp.Warmup, float64(maxSpecWindow))
	}
	if !finite(sp.Measure) || sp.Measure < 0 || sp.Measure > maxSpecWindow {
		return fail("measure %v outside [0, %g]", sp.Measure, float64(maxSpecWindow))
	}
	if sp.SatQueue < 0 || sp.SatQueue > 1<<30 {
		return fail("sat_queue %d outside [0, 2^30]", sp.SatQueue)
	}
	if sp.TraceNode < 0 || sp.TraceNode > maxSpecNodes {
		return fail("trace_node %d outside [0, %d]", sp.TraceNode, maxSpecNodes)
	}
	if sp.TraceLimit < 0 || sp.TraceLimit > maxSpecTraceLimit {
		return fail("trace_limit %d outside [0, %d]", sp.TraceLimit, maxSpecTraceLimit)
	}
	if sp.Replications < 0 || sp.Replications > maxSpecReplications {
		return fail("replications %d outside [0, %d]", sp.Replications, maxSpecReplications)
	}
	if sp.IntraParallelism < 0 || sp.IntraParallelism > maxSpecNodes {
		return fail("intra_parallelism %d outside [0, %d]", sp.IntraParallelism, maxSpecNodes)
	}
	if sp.MetricsBuckets < 0 || sp.MetricsBuckets > MaxMetricsBuckets {
		return fail("metrics_buckets %d outside [0, %d]", sp.MetricsBuckets, MaxMetricsBuckets)
	}
	if sp.MetricsBuckets != 0 && !sp.Metrics {
		return fail("metrics_buckets %d without metrics", sp.MetricsBuckets)
	}
	switch sp.Evaluator {
	case "", "simulator", "model":
	default:
		return fail("evaluator %q is not \"simulator\" or \"model\"", sp.Evaluator)
	}
	if sp.Record != "" && sp.Replay != "" {
		return fmt.Errorf("%w: a spec cannot both record and replay a trace", ErrOptionConflict)
	}
	return nil
}

// ParseSpec decodes a Spec from JSON strictly — unknown fields, trailing
// data and out-of-range values are all errors, never panics — making it
// the safe entry point for untrusted documents (the quarcd wire, fuzzed
// input).
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("%w: %w", ErrInvalidSpec, err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return Spec{}, fmt.Errorf("%w: trailing data after the spec document", ErrInvalidSpec)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// Canonical returns the spec in normal form: defaults are materialized
// (topology, msglen, arrival, spatial, wait/service formulas, seed and
// windows) and fields the selected registries do not read are cleared
// (pattern parameters of other patterns, onoff knobs under other
// arrivals, hotspot knobs when unused, Parallelism always — it cannot
// change a Result). Two specs describing the same scenario therefore
// canonicalize identically, which is what makes Fingerprint a content
// address.
func (sp Spec) Canonical() Spec {
	c := sp
	c.High = slices.Clone(c.High)
	c.Low = slices.Clone(c.Low)
	c.SpatialNodes = slices.Clone(c.SpatialNodes)
	c.SpatialWeights = slices.Clone(c.SpatialWeights)
	if c.Topology == "" {
		c.Topology = "quarc"
	}
	// Each topology family reads exactly one size field; clear the
	// others so equivalent specs share a content address, and fill the
	// ring default (quarc-16, the NewScenario default) when no size was
	// given. Unknown topology names keep all fields — they fail at
	// compile time anyway.
	switch c.Topology {
	case "quarc", "quarc-oneport", "spidergon":
		if c.N == 0 {
			c.N = 16
		}
		c.W, c.H, c.Dims = 0, 0, 0
	case "mesh", "torus":
		c.N, c.Dims = 0, 0
	case "hypercube":
		c.N, c.W, c.H = 0, 0, 0
	}
	if c.Router == "" {
		c.Router = defaultRouterFor(c.Topology)
	}
	if c.Pattern == "" {
		c.Pattern = "none"
	}
	switch c.Pattern {
	case "none", "broadcast":
		c.Dests, c.Port, c.SetSeed, c.High, c.Low = 0, 0, 0, nil, nil
	case "random":
		c.Port, c.High, c.Low = 0, nil, nil
	case "localized":
		c.SetSeed, c.High, c.Low = 0, nil, nil
	case "highlow":
		c.Dests, c.Port, c.SetSeed = 0, 0, 0
	}
	if c.MsgLen == 0 {
		c.MsgLen = 32
	}
	if c.HotspotFrac == 0 {
		c.HotspotNode = 0
	}
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	if c.Arrival != "onoff" {
		c.BurstLen, c.DutyCycle = 0, 0
	}
	if c.Spatial == "" {
		c.Spatial = "uniform"
	}
	if c.Spatial != "hotspot" {
		c.SpatialFrac, c.SpatialNodes, c.SpatialWeights = 0, nil, nil
	}
	if c.Wait == "" {
		c.Wait = "pk"
	}
	if c.Service == "" {
		c.Service = "eq6"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 10000
	}
	if c.Measure == 0 {
		c.Measure = 100000
	}
	if c.TraceLimit <= 0 {
		c.TraceNode, c.TraceLimit = 0, 0
	}
	if c.Replications == 1 {
		// One replication is bitwise-identical to the plain single-run
		// path, so the two spellings share a content address.
		c.Replications = 0
	}
	if c.Metrics {
		if c.MetricsBuckets == 0 {
			c.MetricsBuckets = DefaultMetricsBuckets
		}
	} else {
		c.MetricsBuckets = 0
	}
	c.Parallelism = 0
	c.IntraParallelism = 0
	if c.Evaluator == "" {
		c.Evaluator = "simulator"
	}
	return c
}

// CanonicalJSON is the canonical encoding: the JSON document of the
// canonical form. Specs describing the same scenario encode to the same
// bytes, and ParseSpec(CanonicalJSON) round-trips (pinned by
// TestSpecRoundTrip and FuzzSpecJSON).
func (sp Spec) CanonicalJSON() ([]byte, error) {
	return json.Marshal(sp.Canonical())
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a(data []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// Fingerprint is the stable FNV-1a (64-bit) hash of the canonical
// encoding — the content address of the spec's Result. It is invariant
// under JSON round-trips, field spellings that canonicalize away (e.g.
// an explicit "arrival":"poisson") and Parallelism. An unencodable spec
// (non-finite floats, which Validate rejects anyway) hashes a distinct
// error form rather than panicking.
func (sp Spec) Fingerprint() uint64 {
	b, err := sp.CanonicalJSON()
	if err != nil {
		b = []byte("noc:unencodable-spec:" + err.Error())
	}
	return fnv1a(b)
}

// Structural returns the sub-spec that determines the routed topology,
// multicast destination set and spatial pattern — the expensive,
// rate-independent part of scenario construction. Specs sharing a
// Structural fingerprint can share one compiled base scenario (see
// ScenarioWith); noc/service exploits this so a sweep's points, and
// repeated requests against one configuration, reuse routing tables and
// pooled networks instead of rebuilding them.
func (sp Spec) Structural() Spec {
	c := sp.Canonical()
	return Spec{
		Topology: c.Topology, N: c.N, W: c.W, H: c.H, Dims: c.Dims,
		Router:  c.Router,
		Pattern: c.Pattern, Dests: c.Dests, Port: c.Port, SetSeed: c.SetSeed,
		High: c.High, Low: c.Low,
		Spatial: c.Spatial, SpatialFrac: c.SpatialFrac,
		SpatialNodes: c.SpatialNodes, SpatialWeights: c.SpatialWeights,
	}
}

func waitFromName(name string) WaitFormula {
	if name == "eq3" {
		return PaperEq3Literal
	}
	return PKStandard
}

func serviceFromName(name string) ServiceFormula {
	if name == "tail" {
		return TailRelease
	}
	return PaperEq6
}

func waitName(f WaitFormula) string {
	if f == PaperEq3Literal {
		return "eq3"
	}
	return "pk"
}

func serviceName(f ServiceFormula) string {
	if f == TailRelease {
		return "tail"
	}
	return "eq6"
}

// structuralOptions are the options the Structural sub-spec reduces to.
func (sp Spec) structuralOptions() []Option {
	c := sp.Canonical()
	opts := []Option{
		Topology(c.Topology, TopologyConfig{N: c.N, W: c.W, H: c.H, Dims: c.Dims}),
		Pattern(c.Pattern, PatternConfig{K: c.Dests, Port: c.Port, Seed: c.SetSeed, High: c.High, Low: c.Low}),
		Spatial(c.Spatial, SpatialConfig{Frac: c.SpatialFrac, Nodes: c.SpatialNodes, Weights: weightList(c.SpatialWeights)}),
	}
	if c.Router != "" {
		opts = append(opts, Router(c.Router))
	}
	return opts
}

// weightList maps an absent weight list to nil (equal weights) without
// aliasing the spec's slice.
func weightList(w []float64) []float64 {
	if len(w) == 0 {
		return nil
	}
	return w
}

// tuningOptions are the rate/engine options layered on top of a
// structural base. They set every non-structural knob explicitly, so
// applying them to any structurally identical scenario reproduces the
// spec exactly.
func (sp Spec) tuningOptions() []Option {
	c := sp.Canonical()
	opts := []Option{
		MsgLen(c.MsgLen), Rate(c.Rate), Alpha(c.Alpha),
		Seed(c.Seed), Warmup(c.Warmup), Measure(c.Measure),
		SatQueue(c.SatQueue), Drain(c.Drain), Detail(c.Detail),
		MulticastPriority(c.MulticastPriority),
		ModelWait(waitFromName(c.Wait)), ModelService(serviceFromName(c.Service)),
	}
	if c.HotspotFrac != 0 {
		opts = append(opts, Hotspot(c.HotspotFrac, c.HotspotNode))
	}
	if c.Arrival == "onoff" {
		opts = append(opts, OnOff(c.BurstLen, c.DutyCycle))
	} else {
		opts = append(opts, Arrival(c.Arrival))
	}
	if c.Damping != 0 {
		opts = append(opts, ModelDamping(c.Damping))
	}
	if c.MaxIter != 0 {
		opts = append(opts, ModelMaxIter(c.MaxIter))
	}
	if c.Tol != 0 {
		opts = append(opts, ModelTol(c.Tol))
	}
	if c.TraceLimit > 0 {
		opts = append(opts, Trace(c.TraceNode, c.TraceLimit))
	}
	if c.Replications > 1 {
		opts = append(opts, Replications(c.Replications))
	}
	if c.Metrics {
		opts = append(opts, Metrics(c.MetricsBuckets))
	}
	if sp.Parallelism != 0 {
		// Execution advice survives compilation even though it is not
		// part of the canonical content.
		opts = append(opts, Parallelism(sp.Parallelism))
	}
	if sp.IntraParallelism != 0 {
		opts = append(opts, IntraParallelism(sp.IntraParallelism))
	}
	return opts
}

// Options reduces the spec to the functional-options form — the exact
// option list a hand-written NewScenario call would pass. Record and
// Replay are not included (they need filesystem access; Scenario wires
// them).
func (sp Spec) Options() ([]Option, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return append(sp.structuralOptions(), sp.tuningOptions()...), nil
}

// Scenario compiles the spec into a runnable Scenario — the declarative
// twin of NewScenario. A Replay path is read from the local filesystem; a
// Record path attaches a capture buffer retrievable with
// Scenario.Recording after the evaluation (the caller persists it, as
// quarcsim -spec does).
func (sp Spec) Scenario() (*Scenario, error) {
	opts, err := sp.Options()
	if err != nil {
		return nil, err
	}
	if sp.Replay != "" {
		f, err := os.Open(sp.Replay)
		if err != nil {
			return nil, fmt.Errorf("noc: opening replay trace: %w", err)
		}
		tw, rerr := ReadTraceWorkload(f)
		if cerr := f.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return nil, rerr
		}
		opts = append(opts, Replay(tw))
	}
	if sp.Record != "" {
		opts = append(opts, Record(&TraceWorkload{}))
	}
	return NewScenario(opts...)
}

// ScenarioWith compiles the spec against a pre-built base scenario that
// shares its Structural sub-spec, reusing the base's routed topology,
// destination set and spatial pattern instead of rebuilding them. The
// result is bitwise-identical to Scenario (pinned by
// TestScenarioWithSharesStructure); a structurally different base is an
// error. Record/Replay specs cannot take this path — they need their own
// traffic source.
func (sp Spec) ScenarioWith(base *Scenario) (*Scenario, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Record != "" || sp.Replay != "" {
		return nil, fmt.Errorf("%w: trace record/replay cannot reuse a base scenario", ErrOptionConflict)
	}
	if got, want := base.Spec().Structural(), sp.Structural(); got.Fingerprint() != want.Fingerprint() {
		return nil, fmt.Errorf("noc: base scenario is structurally different from the spec (base %016x, spec %016x)",
			got.Fingerprint(), want.Fingerprint())
	}
	return base.With(sp.tuningOptions()...)
}

// Spec returns the scenario's configuration in declarative, canonical
// form — the inverse of Spec.Scenario up to canonicalization. Runtime
// trace attachments (Record/Replay option values) have no file-path
// representation and are omitted. Two legal-but-extreme option values
// lie outside the codec's image, because the wire format reads their
// zero values as "use the default": a scenario built with Warmup(0) or
// Seed(0) reports the defaults (10000, 1) here and cannot be expressed
// as a Spec.
func (s *Scenario) Spec() Spec {
	c := s.cfg
	sp := Spec{
		Topology: c.topoName, N: c.topoCfg.N, W: c.topoCfg.W, H: c.topoCfg.H, Dims: c.topoCfg.Dims,
		Router:  c.routerName,
		Pattern: c.patName, Dests: c.patCfg.K, Port: c.patCfg.Port, SetSeed: c.patCfg.Seed,
		High: slices.Clone(c.patCfg.High), Low: slices.Clone(c.patCfg.Low),
		MsgLen: c.msgLen, Rate: c.rate, Alpha: c.alpha,
		HotspotFrac: c.hotspotFrac, HotspotNode: c.hotspotNode,
		Arrival: c.arrival, BurstLen: c.burstLen, DutyCycle: c.dutyCycle,
		Spatial: c.spatialName, SpatialFrac: c.spatialCfg.Frac,
		SpatialNodes:   slices.Clone(c.spatialCfg.Nodes),
		SpatialWeights: slices.Clone(c.spatialCfg.Weights),
		Damping:        c.damping, MaxIter: c.maxIter, Tol: c.tol,
		Wait: waitName(c.wait), Service: serviceName(c.service),
		Seed: c.seed, Warmup: c.warmup, Measure: c.measure,
		SatQueue: c.satQueue, Drain: c.drain, Detail: c.detail,
		MulticastPriority: c.mcPriority,
		Replications:      c.replications, Parallelism: c.parallelism,
		IntraParallelism: c.intraParallelism,
	}
	if c.traceEnabled {
		sp.TraceNode, sp.TraceLimit = c.traceNode, c.traceLimit
	}
	if c.metricsBuckets > 0 {
		sp.Metrics, sp.MetricsBuckets = true, c.metricsBuckets
	}
	return sp.Canonical()
}

// Recording returns the trace capture buffer a Record option (or a
// spec's Record path) attached to the scenario, nil otherwise. After a
// Simulator evaluation it holds the run's full workload trace.
func (s *Scenario) Recording() *TraceWorkload { return s.cfg.record }
