package noc

import (
	"encoding/json"
	"testing"

	"quarc/internal/obs"
)

// TestMetricsDoNotPerturbResult is the differential pin behind the
// whole observability pipeline: attaching the recording hook must not
// change the simulation by one bit. The hook fires on the same event
// stream the statistics are folded from, so any divergence means the
// instrumentation has leaked into the schedule.
func TestMetricsDoNotPerturbResult(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"quarc-16", []Option{
			Quarc(16), MsgLen(32), Rate(0.003), Alpha(0.05),
			LocalizedDests(PortL, 4), Seed(11), Warmup(1000), Measure(8000),
		}},
		{"mesh-4x4", []Option{
			Mesh(4, 4), MsgLen(16), Rate(0.004),
			Seed(11), Warmup(1000), Measure(8000),
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plain, err := NewScenario(c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			bare, err := Simulator{}.Evaluate(plain)
			if err != nil {
				t.Fatal(err)
			}

			hooked, err := NewScenario(append(c.opts[:len(c.opts):len(c.opts)], Metrics(50))...)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := Simulator{}.Evaluate(hooked)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Series == nil {
				t.Fatal("metrics evaluation produced no series")
			}
			if rec.Series.Buckets != 50 {
				t.Errorf("series buckets = %d, want 50", rec.Series.Buckets)
			}
			var busy float64
			for _, util := range rec.Series.ChannelUtil {
				for _, u := range util {
					busy += u
				}
			}
			if busy == 0 {
				t.Error("series shows no channel activity at all")
			}

			// Strip the series: everything else must be bitwise-identical
			// to the unhooked run.
			rec.Series = nil
			got, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(bare)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("recording perturbed the result:\n hooked: %s\n bare:   %s", got, want)
			}
		})
	}
}

// TestMetricsParallelismDeterministic pins two contracts at once: the
// combined series is bitwise-identical for every Parallelism(k) (the
// per-replication series fold in replication order), and a shared
// MetricsSink is safe under concurrent replications (run under -race
// in CI).
func TestMetricsParallelismDeterministic(t *testing.T) {
	base := []Option{
		Quarc(16), MsgLen(16), Rate(0.002), Alpha(0.05),
		LocalizedDests(PortL, 4), Seed(3), Warmup(500), Measure(4000),
		Metrics(25), Replications(4),
	}
	run := func(k int, sink Sink) Result {
		t.Helper()
		opts := append(base[:len(base):len(base)], Parallelism(k))
		if sink != nil {
			opts = append(opts, MetricsSink(sink))
		}
		s, err := NewScenario(opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulator{}.Evaluate(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := run(1, nil)
	if serial.Series == nil || serial.Series.Reps != 4 {
		t.Fatalf("serial series = %+v, want 4 combined replications", serial.Series)
	}
	sink := obs.NewMemorySink()
	parallel := run(4, sink)

	got, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("Parallelism(4) result differs from Parallelism(1):\n %s\n %s", got, want)
	}
	if sink.Len() == 0 {
		t.Error("shared sink saw no records")
	}
}
