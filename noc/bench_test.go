// Benchmarks regenerating the paper's evaluation artifacts: one benchmark
// per figure panel (Figures 6 and 7) plus the ablation studies from
// DESIGN.md. Each figure benchmark evaluates the analytical model and runs
// the simulator at mid load (50% of the model's saturation rate) and
// reports the latencies and the model-vs-simulation relative error as
// custom metrics, so `go test -bench=.` reproduces the shape of every
// panel:
//
//	model_uni_cycles, sim_uni_cycles, relerr_uni_pct
//	model_mc_cycles,  sim_mc_cycles,  relerr_mc_pct
package noc

import (
	"math"
	"testing"

	"quarc/internal/core"
	"quarc/internal/experiments"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

// benchSim keeps per-iteration cost moderate while leaving enough messages
// for stable means.
func benchSim() experiments.SimConfig {
	return experiments.SimConfig{Warmup: 3000, Measure: 30000, Seed: 0xBE7C4}
}

// benchPanel runs one figure panel's mid-load point per iteration and
// reports its latencies and model error.
func benchPanel(b *testing.B, id string) {
	b.Helper()
	p, err := experiments.PanelByID(id)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := p.Router()
	if err != nil {
		b.Fatal(err)
	}
	set, err := p.DestinationSet(rt)
	if err != nil {
		b.Fatal(err)
	}
	sat, err := experiments.FindSaturationRate(rt, p.MsgLen, p.Alpha, set, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	rate := 0.5 * sat
	var last experiments.Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := experiments.RunPoint(rt, set, p.MsgLen, p.Alpha, rate, benchSim())
		if err != nil {
			b.Fatal(err)
		}
		last = pt
	}
	b.StopTimer()
	b.ReportMetric(last.ModelUnicast, "model_uni_cycles")
	b.ReportMetric(last.SimUnicast, "sim_uni_cycles")
	b.ReportMetric(100*relErr(last.ModelUnicast, last.SimUnicast), "relerr_uni_pct")
	b.ReportMetric(last.ModelMulticast, "model_mc_cycles")
	b.ReportMetric(last.SimMulticast, "sim_mc_cycles")
	b.ReportMetric(100*relErr(last.ModelMulticast, last.SimMulticast), "relerr_mc_pct")
}

func relErr(a, ref float64) float64 {
	if ref == 0 || math.IsNaN(ref) {
		return math.NaN()
	}
	return math.Abs(a-ref) / math.Abs(ref)
}

// BenchmarkFig6 regenerates Figure 6 (random multicast destinations), one
// sub-benchmark per panel.
func BenchmarkFig6(b *testing.B) {
	for _, id := range []string{"fig6-a", "fig6-b", "fig6-c", "fig6-d"} {
		sub := map[string]string{
			"fig6-a": "N16", "fig6-b": "N32", "fig6-c": "N64", "fig6-d": "N128",
		}[id]
		id := id
		b.Run(sub, func(b *testing.B) { benchPanel(b, id) })
	}
}

// BenchmarkFig7 regenerates Figure 7 (localized destinations on one rim).
func BenchmarkFig7(b *testing.B) {
	for _, id := range []string{"fig7-a", "fig7-b", "fig7-c", "fig7-d"} {
		sub := map[string]string{
			"fig7-a": "N16", "fig7-b": "N32", "fig7-c": "N64", "fig7-d": "N128",
		}[id]
		id := id
		b.Run(sub, func(b *testing.B) { benchPanel(b, id) })
	}
}

// BenchmarkAblationOnePort compares all-port vs one-port Quarc broadcast
// latency (the design choice behind the paper's Fig. 1 discussion).
func BenchmarkAblationOnePort(b *testing.B) {
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.OnePortAblation(16, 32, 0.05, []float64{0.002}, benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(series) == 2 {
		b.ReportMetric(series[0].Points[0].SimMulticast, "allport_mc_cycles")
		b.ReportMetric(series[1].Points[0].SimMulticast, "oneport_mc_cycles")
		b.ReportMetric(series[1].Points[0].SimMulticast/series[0].Points[0].SimMulticast, "oneport_slowdown_x")
	}
}

// BenchmarkAblationSpidergon compares Quarc true broadcast against the
// Spidergon's broadcast-by-consecutive-unicasts (paper Sec. 3.2).
func BenchmarkAblationSpidergon(b *testing.B) {
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.SpidergonComparison(16, 32, 0.05, []float64{0.0005}, benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(series) == 2 {
		b.ReportMetric(series[0].Points[0].SimMulticast, "quarc_bcast_cycles")
		b.ReportMetric(series[1].Points[0].SimMulticast, "spidergon_bcast_cycles")
		b.ReportMetric(series[1].Points[0].SimMulticast/series[0].Points[0].SimMulticast, "spidergon_slowdown_x")
	}
}

// BenchmarkMeshTorus checks the model on the paper's future-work targets
// (multi-port mesh and torus with dual-path Hamilton multicast).
func BenchmarkMeshTorus(b *testing.B) {
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.MeshExtension(4, 4, 16, 0.05, []float64{0.004}, benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, s := range series {
		pt := s.Points[0]
		b.ReportMetric(100*relErr(pt.ModelMulticast, pt.SimMulticast), "relerr_mc_pct_"+s.Label)
	}
}

// BenchmarkAblationService compares the paper's Eq. 6 service recurrence
// against the exact tail-release holding time, reporting each variant's
// error against the simulator at a moderately loaded point.
func BenchmarkAblationService(b *testing.B) {
	var pts []experiments.ServicePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.ServiceFormulaAblation(16, 32, []float64{0.006}, benchSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(pts) == 1 {
		b.ReportMetric(100*relErr(pts[0].Eq6Unicast, pts[0].SimUnicast), "eq6_relerr_pct")
		b.ReportMetric(100*relErr(pts[0].TailUnicast, pts[0].SimUnicast), "tail_relerr_pct")
	}
}

// BenchmarkMaxExp compares the paper's Eq. 12 recursion against the
// closed-form inclusion-exclusion identity (abl-maxexp in DESIGN.md).
func BenchmarkMaxExp(b *testing.B) {
	rates := []float64{0.3, 1.1, 2.7, 0.9, 1.4, 3.2, 0.5, 2.1}
	b.Run("recursive-m4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MaxExpRecursive(rates[:4])
		}
	})
	b.Run("closedform-m4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MaxExpClosedForm(rates[:4])
		}
	})
	b.Run("recursive-m8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MaxExpRecursive(rates)
		}
	})
	b.Run("closedform-m8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MaxExpClosedForm(rates)
		}
	})
}

// BenchmarkModelSolve measures the analytical model's fixed-point solve on
// the largest paper configuration (N=128).
func BenchmarkModelSolve(b *testing.B) {
	q, err := topology.NewQuarc(128)
	if err != nil {
		b.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.LocalizedSet(topology.PortL, 8)
	if err != nil {
		b.Fatal(err)
	}
	in := core.Input{
		Router: rt,
		Spec:   traffic.Spec{Rate: 0.0004, MulticastFrac: 0.05, Set: set},
		MsgLen: 64,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Predict(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulator throughput (events/sec) on a
// mid-load 64-node Quarc.
func BenchmarkSimulator(b *testing.B) {
	q, err := topology.NewQuarc(64)
	if err != nil {
		b.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.LocalizedSet(topology.PortL, 4)
	if err != nil {
		b.Fatal(err)
	}
	spec := traffic.Spec{Rate: 0.001, MulticastFrac: 0.05, Set: set}
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := traffic.NewWorkload(rt, spec, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{MsgLen: 32, Warmup: 1000, Measure: 20000})
		if err != nil {
			b.Fatal(err)
		}
		res := nw.Run()
		events += res.Events
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
	}
}
