package noc

import (
	"io"

	"quarc/internal/experiments"
)

// Panel is one paper figure panel: a single latency-vs-generation-rate
// graph with a fixed network size, message length, multicast fraction and
// destination regime.
type Panel struct {
	// ID names the panel, e.g. "fig6-a"; Figure is "6" (random
	// destinations) or "7" (localized destinations).
	ID     string `json:"id"`
	Figure string `json:"figure"`
	// N is the Quarc network size, MsgLen the message length in flits and
	// Alpha the multicast fraction.
	N      int     `json:"n"`
	MsgLen int     `json:"msglen"`
	Alpha  float64 `json:"alpha"`
	// Random selects Fig. 6-style random destination sets (seeded by
	// SetSeed); otherwise the set is localized on rim LocalPort (Fig. 7).
	Random    bool   `json:"random"`
	SetSize   int    `json:"set_size"`
	LocalPort int    `json:"local_port"`
	SetSeed   uint64 `json:"set_seed"`
	// Points is the number of rate samples across the stable region
	// (default 8).
	Points int `json:"points"`
}

func fromInternalPanel(p experiments.Panel) Panel {
	return Panel{ID: p.ID, Figure: p.Figure, N: p.N, MsgLen: p.MsgLen, Alpha: p.Alpha,
		Random: p.Random, SetSize: p.SetSize, LocalPort: p.LocalPort, SetSeed: p.SetSeed,
		Points: p.Points}
}

func (p Panel) toInternal() experiments.Panel {
	return experiments.Panel{ID: p.ID, Figure: p.Figure, N: p.N, MsgLen: p.MsgLen,
		Alpha: p.Alpha, Random: p.Random, SetSize: p.SetSize, LocalPort: p.LocalPort,
		SetSeed: p.SetSeed, Points: p.Points}
}

// Fig6Panels returns the representative configurations for Figure 6
// (random multicast destinations).
func Fig6Panels() []Panel { return fromInternalPanels(experiments.Fig6Panels()) }

// Fig7Panels returns the configurations for Figure 7 (localized
// destinations: all targets on the same rim).
func Fig7Panels() []Panel { return fromInternalPanels(experiments.Fig7Panels()) }

// FigurePanels returns every figure panel in order.
func FigurePanels() []Panel { return fromInternalPanels(experiments.AllPanels()) }

func fromInternalPanels(ps []experiments.Panel) []Panel {
	out := make([]Panel, len(ps))
	for i, p := range ps {
		out[i] = fromInternalPanel(p)
	}
	return out
}

// PanelByID finds a predefined panel by its ID.
func PanelByID(id string) (Panel, error) {
	p, err := experiments.PanelByID(id)
	if err != nil {
		return Panel{}, err
	}
	return fromInternalPanel(p), nil
}

// PanelResult is a completed figure panel.
type PanelResult struct {
	inner experiments.Result
}

// Panel returns the configuration the result was produced from.
func (r PanelResult) Panel() Panel { return fromInternalPanel(r.inner.Panel) }

// SatRate returns the model saturation rate the panel's rate grid was
// scaled to.
func (r PanelResult) SatRate() float64 { return r.inner.SatRate }

// AsciiPlot renders the panel as an ASCII latency-vs-rate plot of the
// given dimensions.
func (r PanelResult) AsciiPlot(width, height int) string {
	return experiments.AsciiPlot(r.inner, width, height)
}

// WriteCSV emits the panel's points as CSV.
func (r PanelResult) WriteCSV(w io.Writer) error { return experiments.WriteCSV(w, r.inner) }

// RunFigurePanels regenerates figure panels with a bounded worker pool
// (workers <= 0 selects GOMAXPROCS): for every rate in each panel's sweep
// it evaluates the analytical model and runs the simulator. Results are
// ordered like the input.
func RunFigurePanels(panels []Panel, e Effort, workers int) ([]PanelResult, error) {
	internal := make([]experiments.Panel, len(panels))
	for i, p := range panels {
		internal[i] = p.toInternal()
	}
	results, err := experiments.RunPanels(internal, experiments.SimConfig(e), workers)
	if err != nil {
		return nil, err
	}
	out := make([]PanelResult, len(results))
	for i, r := range results {
		out[i] = PanelResult{inner: r}
	}
	return out, nil
}

// WriteFiguresJSON emits panel results as a JSON array, the
// machine-readable companion of WriteCSV.
func WriteFiguresJSON(w io.Writer, results []PanelResult) error {
	internal := make([]experiments.Result, len(results))
	for i, r := range results {
		internal[i] = r.inner
	}
	return experiments.WriteJSON(w, internal)
}

// FiguresSummary renders the model-vs-simulation agreement table over all
// panels (relative error over stable points).
func FiguresSummary(results []PanelResult) string {
	internal := make([]experiments.Result, len(results))
	for i, r := range results {
		internal[i] = r.inner
	}
	return experiments.SummaryTable(internal)
}

// SatRow is one configuration of the saturation study: the model's
// stability boundary as a function of network size, message length and
// multicast rate.
type SatRow struct {
	N       int     `json:"n"`
	MsgLen  int     `json:"msglen"`
	Alpha   float64 `json:"alpha"`
	SetSize int     `json:"set_size"`
	// SatRate is the highest per-node generation rate the model's fixed
	// point tolerates; Capacity is SatRate x N x MsgLen, the aggregate
	// flit rate in flits/cycle.
	SatRate  float64 `json:"sat_rate"`
	Capacity float64 `json:"capacity"`
}

// SaturationStudy sweeps the model's saturation rate over the cartesian
// product of the given Quarc sizes, message lengths and multicast
// fractions, using a localized destination set of the given size.
func SaturationStudy(sizes, msgs []int, alphas []float64, setSize int) ([]SatRow, error) {
	rows, err := experiments.SaturationStudy(sizes, msgs, alphas, setSize)
	if err != nil {
		return nil, err
	}
	out := make([]SatRow, len(rows))
	for i, r := range rows {
		out[i] = SatRow{N: r.N, MsgLen: r.MsgLen, Alpha: r.Alpha, SetSize: r.SetSize,
			SatRate: r.SatRate, Capacity: r.Capacity}
	}
	return out, nil
}

// SatTable renders the saturation study.
func SatTable(rows []SatRow) string {
	internal := make([]experiments.SatRow, len(rows))
	for i, r := range rows {
		internal[i] = experiments.SatRow{N: r.N, MsgLen: r.MsgLen, Alpha: r.Alpha,
			SetSize: r.SetSize, SatRate: r.SatRate, Capacity: r.Capacity}
	}
	return experiments.SatTable(internal)
}
