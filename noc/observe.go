package noc

import "quarc/internal/obs"

// The public face of the observability pipeline (internal/obs): the
// Metrics option attaches a batched recording hook to the simulator,
// Result.Series carries the aggregated time series, and MetricsSink
// streams the raw records into a caller-supplied sink. The types are
// aliases so callers and the internal recorder share one definition.

// TimeSeries is the bucketed time-series payload of a Metrics run:
// per-channel utilization, injection/ejection counts, per-worm latency
// sums and queue-occupancy maxima per time bucket (see
// internal/obs.Series for the field-by-field contract). The name
// Series is taken by the unrelated labelled-sweep type in ablations.go.
type TimeSeries = obs.Series

// Sink receives the raw observability record stream when MetricsSink
// is set. Implementations must be safe for concurrent Append: under
// Replications with Parallelism, batches arrive from several worker
// goroutines (each batch is only valid during the call).
type Sink = obs.Sink

// ObsRecord is one raw observability record as delivered to a Sink:
// an injection, ejection, channel grant/release or queue-occupancy
// change, stamped with simulated time.
type ObsRecord = obs.Record

// ObsFileSink is a Sink appending records to a flat file in
// CRC-framed, torn-tail-tolerant frames (a WAL-style log readable with
// ReadObsFile). Close it after the evaluation to flush the tail frame.
type ObsFileSink = obs.FileSink

// CreateObsFile creates (truncating) an observability log at path for
// use with MetricsSink.
func CreateObsFile(path string) (*ObsFileSink, error) { return obs.CreateFileSink(path) }

// ReadObsFile decodes an ObsFileSink log. A torn tail frame (from a
// crash mid-write) is dropped silently, as in WAL recovery; corruption
// anywhere else is an error.
func ReadObsFile(path string) ([]ObsRecord, error) { return obs.ReadFile(path) }

// AggregateObs folds a raw record stream into a TimeSeries — the same
// fold the simulator applies for Result.Series, exposed so offline
// tools can reproduce a served series from an ObsFileSink log.
func AggregateObs(records []ObsRecord, channels, buckets int, end float64) *TimeSeries {
	return obs.Aggregate(records, channels, buckets, end)
}
