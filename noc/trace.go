package noc

import (
	"fmt"
	"io"

	"quarc/internal/traffic"
)

// TraceWorkload is a captured traffic trace: every interarrival gap and
// message the workload emitted during one simulator run. Capture one by
// evaluating a scenario with Record, feed it back with Replay — the
// replayed run is bitwise-identical to the recorded one on the same
// scenario — and persist it with WriteBinary or WriteJSONL. Traces make
// any live workload, including the stochastic arrival processes, a
// reproducible artifact that can be shared, diffed and replayed against
// design variants (e.g. the same trace under FIFO vs multicast-priority
// arbitration).
type TraceWorkload struct {
	tr *traffic.Trace
}

// Empty reports whether the trace holds no recorded run yet.
func (t *TraceWorkload) Empty() bool { return t == nil || t.tr == nil }

// Nodes returns the node count of the network the trace was captured on
// (0 when empty).
func (t *TraceWorkload) Nodes() int {
	if t.Empty() {
		return 0
	}
	return t.tr.N
}

// Messages returns the total number of recorded messages.
func (t *TraceWorkload) Messages() int {
	if t.Empty() {
		return 0
	}
	return t.tr.Messages()
}

// WriteBinary writes the trace in the compact binary format.
func (t *TraceWorkload) WriteBinary(w io.Writer) error {
	if t.Empty() {
		return fmt.Errorf("noc: writing an empty trace")
	}
	return t.tr.WriteBinary(w)
}

// WriteJSONL writes the trace as line-delimited JSON (one record per
// line; floats round-trip exactly, so JSONL traces replay bitwise too).
func (t *TraceWorkload) WriteJSONL(w io.Writer) error {
	if t.Empty() {
		return fmt.Errorf("noc: writing an empty trace")
	}
	return t.tr.WriteJSONL(w)
}

// ReadTraceWorkload reads a trace in either encoding (the binary magic is
// sniffed; anything else is parsed as JSONL).
func ReadTraceWorkload(r io.Reader) (*TraceWorkload, error) {
	tr, err := traffic.ReadTrace(r)
	if err != nil {
		return nil, err
	}
	return &TraceWorkload{tr: tr}, nil
}

// Record captures the scenario's workload into t while the simulator
// evaluates it: after Evaluate returns, t holds the full trace of the
// run. Recording needs a single replication (the trace of one seeded
// run) and only the Simulator supports it — the analytical model
// generates no messages to record.
func Record(t *TraceWorkload) Option {
	return func(cfg *config) error {
		if t == nil {
			return fmt.Errorf("noc: Record needs a non-nil trace")
		}
		cfg.record = t
		return nil
	}
}

// Replay drives the simulator from a captured trace instead of the
// scenario's generative workload: gaps and destinations come from the
// trace (Rate, Alpha, Arrival and the spatial pattern are ignored), and
// routes are re-derived from the scenario's routed topology, which must
// match the one the trace was recorded on. Replaying an unmodified trace
// on the recording scenario reproduces its Result exactly.
func Replay(t *TraceWorkload) Option {
	return func(cfg *config) error {
		if t == nil {
			return fmt.Errorf("noc: Replay needs a non-nil trace")
		}
		cfg.replay = t
		return nil
	}
}
