package noc

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestPanelCatalog pins the figure-panel plumbing: the catalog is
// non-empty, IDs resolve, and the internal conversion round-trips.
func TestPanelCatalog(t *testing.T) {
	all := FigurePanels()
	if len(all) == 0 {
		t.Fatal("no figure panels")
	}
	if len(Fig6Panels())+len(Fig7Panels()) != len(all) {
		t.Errorf("fig6 (%d) + fig7 (%d) != all (%d)",
			len(Fig6Panels()), len(Fig7Panels()), len(all))
	}
	first := all[0]
	got, err := PanelByID(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != first {
		t.Errorf("PanelByID(%q) = %+v, want %+v", first.ID, got, first)
	}
	if back := fromInternalPanel(first.toInternal()); back != first {
		t.Errorf("panel round-trip changed: %+v -> %+v", first, back)
	}
	if _, err := PanelByID("fig99-z"); err == nil {
		t.Error("unknown panel ID resolved")
	}
}

// TestRunFigurePanelsQuick drives one tiny custom panel end to end
// through the public figure API: run, ASCII plot, CSV, JSON, summary.
func TestRunFigurePanelsQuick(t *testing.T) {
	panel := Panel{
		ID: "test-quick", Figure: "6", N: 8, MsgLen: 8, Alpha: 0.1,
		Random: true, SetSize: 2, SetSeed: 3, Points: 2,
	}
	results, err := RunFigurePanels([]Panel{panel},
		Effort{Warmup: 500, Measure: 4000, Seed: 11}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.Panel().ID != "test-quick" {
		t.Errorf("panel ID = %q", r.Panel().ID)
	}
	if r.SatRate() <= 0 {
		t.Errorf("saturation rate = %v, want > 0", r.SatRate())
	}
	if plot := r.AsciiPlot(40, 12); !strings.Contains(plot, "latency") && len(plot) < 40 {
		t.Errorf("ascii plot suspiciously short:\n%s", plot)
	}
	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines < 2 {
		t.Errorf("CSV has %d lines, want >= 2:\n%s", lines, csv.String())
	}
	var js bytes.Buffer
	if err := WriteFiguresJSON(&js, results); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("figures JSON does not parse: %v", err)
	}
	if sum := FiguresSummary(results); !strings.Contains(sum, "test-quick") {
		t.Errorf("summary table missing the panel:\n%s", sum)
	}
}

// TestSaturationStudyQuick covers the saturation-study wrappers.
func TestSaturationStudyQuick(t *testing.T) {
	rows, err := SaturationStudy([]int{8, 16}, []int{8}, []float64{0.05}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.SatRate <= 0 || r.Capacity <= 0 {
			t.Errorf("row %+v has non-positive saturation", r)
		}
	}
	table := SatTable(rows)
	if !strings.Contains(table, "8") {
		t.Errorf("saturation table empty:\n%s", table)
	}
}
