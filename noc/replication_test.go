package noc

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// same compares two results (or whole sweep results) for bitwise
// equality. reflect.DeepEqual would report NaN != NaN for the CI fields
// of single runs; the %+v rendering round-trips every float64 exactly and
// prints all NaNs alike.
func same(a, b any) bool { return fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b) }

func repScenario(t *testing.T, opts ...Option) *Scenario {
	t.Helper()
	base := []Option{
		Quarc(16), MsgLen(16), Rate(0.003), Alpha(0.05), LocalizedDests(PortL, 3),
		Seed(77), Warmup(500), Measure(5000),
	}
	s, err := NewScenario(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReplicationsDeterministicAcrossParallelism pins the replication
// satellite: Replications(n) must produce the identical aggregated Result
// for Parallelism(1) and Parallelism(8) — scheduling must never leak into
// the numbers.
func TestReplicationsDeterministicAcrossParallelism(t *testing.T) {
	run := func(k int) Result {
		s := repScenario(t, Replications(6), Parallelism(k))
		r, err := Simulator{}.Evaluate(s)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("aggregated results differ between k=1 and k=8:\n%+v\nvs\n%+v", serial, parallel)
	}
	if serial.Replications != 6 {
		t.Fatalf("Replications = %d, want 6", serial.Replications)
	}
	if serial.UnicastN == 0 || math.IsNaN(serial.Unicast) {
		t.Fatal("aggregate lost the unicast estimate")
	}
	if math.IsNaN(serial.UnicastCI) {
		t.Fatal("across-replication CI missing with 6 replications")
	}
}

// TestSingleReplicationMatchesPlainRun pins backward compatibility:
// Replications(1) is bitwise-identical to not using the option at all.
func TestSingleReplicationMatchesPlainRun(t *testing.T) {
	plain, err := Simulator{}.Evaluate(repScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	one, err := Simulator{}.Evaluate(repScenario(t, Replications(1), Parallelism(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !same(plain, one) {
		t.Fatalf("Replications(1) diverged from the plain run:\n%+v\nvs\n%+v", plain, one)
	}
}

// TestReplicationsUseDistinctSeeds makes sure the derived seeds actually
// vary the runs (otherwise the CI would collapse to zero and the
// aggregate would be a lie).
func TestReplicationsUseDistinctSeeds(t *testing.T) {
	s := repScenario(t, Replications(4), Parallelism(1))
	r, err := Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.UnicastCI == 0 {
		t.Fatal("zero across-replication CI: replications look identical")
	}
	if seen := map[uint64]bool{}; true {
		for rep := 0; rep < 4; rep++ {
			seed := repSeed(77, rep)
			if seen[seed] {
				t.Fatalf("replication seed %d repeats", seed)
			}
			seen[seed] = true
		}
	}
}

// TestSweepWithReplicationsDeterministicAcrossWorkers drives the
// (point x replication) job pool: the whole sweep result must be
// identical for 1 and 8 workers, model results must appear exactly once
// per point, and simulator results must carry the aggregation.
func TestSweepWithReplicationsDeterministicAcrossWorkers(t *testing.T) {
	sweep := func(workers int) SweepResult {
		s := repScenario(t, Replications(3))
		out, err := Sweep(s, SweepOptions{Rates: []float64{0.001, 0.003}, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one := sweep(1)
	eight := sweep(8)
	if !same(one, eight) {
		t.Fatalf("sweep results differ between 1 and 8 workers:\n%+v\nvs\n%+v", one, eight)
	}
	for _, pt := range one.Points {
		sim, ok := pt.Get("simulator")
		if !ok {
			t.Fatal("sweep point lost the simulator result")
		}
		if sim.Replications != 3 {
			t.Fatalf("sweep simulator result aggregated %d replications, want 3", sim.Replications)
		}
		model, ok := pt.Get("model")
		if !ok {
			t.Fatal("sweep point lost the model result")
		}
		if model.Replications != 0 {
			t.Fatal("deterministic model result should not be replicated")
		}
	}
}

// TestSweepWithoutReplicationsUnchanged pins that a replication-free sweep
// is bitwise-identical to a Replications(1) sweep — the job restructure
// must not have moved any seed.
func TestSweepWithoutReplicationsUnchanged(t *testing.T) {
	plain, err := Sweep(repScenario(t), SweepOptions{Rates: []float64{0.002}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Sweep(repScenario(t, Replications(1)), SweepOptions{Rates: []float64{0.002}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !same(plain, one) {
		t.Fatalf("Replications(1) sweep diverged:\n%+v\nvs\n%+v", plain, one)
	}
}
