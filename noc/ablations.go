package noc

import (
	"fmt"
	"strings"
)

// Series is a labelled model-vs-simulation sweep of one configuration,
// used by the ablation studies to compare architectures under identical
// workloads.
type Series struct {
	Label  string       `json:"label"`
	Points []SweepPoint `json:"points"`
}

// RunSeries evaluates Model and Simulator on the scenario for each rate.
func RunSeries(label string, s *Scenario, rates []float64) (Series, error) {
	sw, err := Sweep(s, SweepOptions{Rates: rates, Workers: 1})
	if err != nil {
		return Series{}, err
	}
	return Series{Label: label, Points: sw.Points}, nil
}

// SeriesTable renders one or more series side by side.
func SeriesTable(series []Series) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "%s:\n", s.Label)
		fmt.Fprintf(&b, "  %-10s %12s %12s %12s %12s %5s\n",
			"rate", "model-uni", "sim-uni", "model-mc", "sim-mc", "sat")
		for _, p := range s.Points {
			model, _ := p.Get("model")
			sim, _ := p.Get("simulator")
			sat := ""
			if model.Saturated {
				sat += "M"
			}
			if sim.Saturated {
				sat += "S"
			}
			fmt.Fprintf(&b, "  %-10.5g %12.2f %12.2f %12.2f %12.2f %5s\n",
				p.Rate, model.Unicast, sim.Unicast, model.Multicast, sim.Multicast, sat)
		}
	}
	return b.String()
}

// OnePortAblation compares the all-port Quarc against a one-port variant
// with identical network links under a broadcast-heavy workload — the
// design choice the paper's introduction motivates with Fig. 1 (multi-port
// routers remove the injection serialization of collective operations).
// Extra options (e.g. SimEffort) apply to both scenarios.
func OnePortAblation(n, msgLen int, alpha float64, rates []float64, opts ...Option) ([]Series, error) {
	return compare(rates, opts,
		labelled{"all-port", []Option{Quarc(n), MsgLen(msgLen), Alpha(alpha), Broadcast()}},
		labelled{"one-port", []Option{QuarcOnePort(n), MsgLen(msgLen), Alpha(alpha), Broadcast()}},
	)
}

// SpidergonComparison compares the Quarc's true hardware broadcast against
// the Spidergon's broadcast-by-consecutive-unicasts at the same size,
// message length and rates (paper Sec. 3.2).
func SpidergonComparison(n, msgLen int, alpha float64, rates []float64, opts ...Option) ([]Series, error) {
	return compare(rates, opts,
		labelled{"quarc-broadcast", []Option{Quarc(n), MsgLen(msgLen), Alpha(alpha), Broadcast()}},
		labelled{"spidergon-bcast-by-unicast", []Option{Spidergon(n), MsgLen(msgLen), Alpha(alpha), Broadcast()}},
	)
}

// MeshExtension checks the model's validity beyond the Quarc — the paper's
// stated future work — by comparing model and simulation on an all-port
// mesh and torus with Hamilton-path multicast.
func MeshExtension(w, h, msgLen int, alpha float64, rates []float64, opts ...Option) ([]Series, error) {
	set := HighLowDests([]int{2, 4}, []int{1, 3})
	return compare(rates, opts,
		labelled{fmt.Sprintf("mesh-%dx%d", w, h), []Option{Mesh(w, h), MsgLen(msgLen), Alpha(alpha), set}},
		labelled{fmt.Sprintf("torus-%dx%d", w, h), []Option{Torus(w, h), MsgLen(msgLen), Alpha(alpha), set}},
	)
}

// WorkloadAblation sweeps the same offered load through the
// workload-diversity registries: every arrival process (how the load
// clumps in time) and a selection of spatial patterns (how it clumps in
// space), on one topology. The study runs the simulator only — the
// analytical model's M/G/1 machinery assumes Poisson arrivals and
// rejects the others by design — and makes visible how much congestion
// smooth Poisson/uniform injection hides at equal average rates.
func WorkloadAblation(n, msgLen int, rates []float64, opts ...Option) ([]Series, error) {
	variants := []labelled{
		{"poisson/uniform", nil},
		{"bernoulli/uniform", []Option{Arrival("bernoulli")}},
		{"onoff(8,0.25)/uniform", []Option{OnOff(8, 0.25)}},
		{"periodic/uniform", []Option{Arrival("periodic")}},
		{"poisson/transpose", []Option{Permutation("transpose")}},
		{"poisson/tornado", []Option{Permutation("tornado")}},
		{"onoff(8,0.25)/tornado", []Option{OnOff(8, 0.25), Permutation("tornado")}},
	}
	var out []Series
	for _, v := range variants {
		all := append([]Option{Quarc(n), MsgLen(msgLen)}, opts...)
		s, err := NewScenario(append(all, v.opts...)...)
		if err != nil {
			return nil, err
		}
		sw, err := Sweep(s, SweepOptions{Rates: rates, Evaluators: []Evaluator{Simulator{}}})
		if err != nil {
			return nil, err
		}
		out = append(out, Series{Label: v.label, Points: sw.Points})
	}
	return out, nil
}

// SimSeriesTable renders simulator-only series (e.g. WorkloadAblation's)
// side by side.
func SimSeriesTable(series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s", "rate:")
	if len(series) > 0 {
		for _, p := range series[0].Points {
			fmt.Fprintf(&b, " %10.5g", p.Rate)
		}
	}
	fmt.Fprintln(&b)
	for _, s := range series {
		fmt.Fprintf(&b, "%-24s", s.Label)
		for _, p := range s.Points {
			sim, _ := p.Get("simulator")
			if sim.Saturated {
				fmt.Fprintf(&b, " %10s", "SAT")
			} else {
				fmt.Fprintf(&b, " %10.2f", sim.Unicast)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

type labelled struct {
	label string
	opts  []Option
}

func compare(rates []float64, extra []Option, configs ...labelled) ([]Series, error) {
	var out []Series
	for _, c := range configs {
		s, err := NewScenario(append(c.opts, extra...)...)
		if err != nil {
			return nil, err
		}
		series, err := RunSeries(c.label, s, rates)
		if err != nil {
			return nil, err
		}
		out = append(out, series)
	}
	return out, nil
}

// ServicePoint is one sample of the service-formula ablation: both model
// variants against the same simulation.
type ServicePoint struct {
	Rate         float64 `json:"rate"`
	Eq6Unicast   float64 `json:"eq6_unicast"`
	TailUnicast  float64 `json:"tail_unicast"`
	SimUnicast   float64 `json:"sim_unicast"`
	Eq6Saturated bool    `json:"eq6_saturated"`
}

// ServiceFormulaAblation compares the paper's Eq. 6 service recurrence
// (with its +1 cycle per downstream hop) against the tail-release variant
// that models the physical channel holding time exactly. Eq. 6 is
// conservative: it predicts higher utilization and saturates earlier; the
// ablation quantifies by how much against the simulator.
func ServiceFormulaAblation(n, msgLen int, rates []float64, opts ...Option) ([]ServicePoint, error) {
	base, err := NewScenario(append([]Option{Quarc(n), MsgLen(msgLen)}, opts...)...)
	if err != nil {
		return nil, err
	}
	var out []ServicePoint
	for _, rate := range rates {
		s, err := base.With(Rate(rate))
		if err != nil {
			return nil, err
		}
		eq6, err := Model{}.Evaluate(s)
		if err != nil {
			return nil, err
		}
		sTail, err := s.With(ModelService(TailRelease))
		if err != nil {
			return nil, err
		}
		tail, err := Model{}.Evaluate(sTail)
		if err != nil {
			return nil, err
		}
		sim, err := Simulator{}.Evaluate(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ServicePoint{
			Rate:         rate,
			Eq6Unicast:   eq6.Unicast,
			TailUnicast:  tail.Unicast,
			SimUnicast:   sim.Unicast,
			Eq6Saturated: eq6.Saturated,
		})
	}
	return out, nil
}

// ServiceTable renders the service-formula ablation.
func ServiceTable(points []ServicePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %12s\n", "rate", "eq6-uni", "tail-uni", "sim-uni")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10.5g %12.2f %12.2f %12.2f\n",
			p.Rate, p.Eq6Unicast, p.TailUnicast, p.SimUnicast)
	}
	return b.String()
}
