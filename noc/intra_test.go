package noc

import (
	"reflect"
	"testing"
)

// intraBase is a mid-load scenario cheap enough for the differential
// matrix below.
func intraBase(t *testing.T, extra ...Option) *Scenario {
	t.Helper()
	opts := append([]Option{
		Quarc(16), LocalizedDests(PortL, 4),
		MsgLen(16), Rate(0.004), Alpha(0.05),
		Seed(21), Warmup(1000), Measure(8000),
	}, extra...)
	s, err := NewScenario(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestIntraParallelismBitwise pins the option's contract at the API
// boundary: for every shard count — and on both the stateless and the
// pooled simulator — the Result is bitwise-identical to the serial
// evaluation, including the paths the engine declines and runs serially
// (lattice arrivals, metrics recording).
func TestIntraParallelismBitwise(t *testing.T) {
	cases := []struct {
		name  string
		extra []Option
	}{
		{name: "poisson"},
		{name: "onoff", extra: []Option{OnOff(4, 0.5)}},
		{name: "bernoulli-falls-back", extra: []Option{Arrival("bernoulli")}},
		{name: "metrics-falls-back", extra: []Option{Metrics(50)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := (Simulator{}).Evaluate(intraBase(t, tc.extra...))
			if err != nil {
				t.Fatal(err)
			}
			want := resultJSON(t, serial)
			for _, p := range []int{2, 4, 8} {
				s := intraBase(t, append(tc.extra, IntraParallelism(p))...)
				got, err := (Simulator{}).Evaluate(s)
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
				if gj := resultJSON(t, got); gj != want {
					t.Errorf("p=%d: parallel result diverges\n got %s\nwant %s", p, gj, want)
				}
				pooled := NewPooledSimulator()
				got2, err := pooled.Evaluate(s)
				if err != nil {
					t.Fatalf("p=%d pooled: %v", p, err)
				}
				if gj := resultJSON(t, got2); gj != want {
					t.Errorf("p=%d: pooled parallel result diverges\n got %s\nwant %s", p, gj, want)
				}
			}
		})
	}
}

// TestIntraParallelismSaturationRerun pins the abort path through the
// evaluator: a saturating scenario under IntraParallelism still reports
// the serial engine's truncated saturated Result, via the rebuild-and-
// rerun fallback.
func TestIntraParallelismSaturationRerun(t *testing.T) {
	hot := []Option{Rate(0.05), SatQueue(20), Measure(20000)}
	serial, err := (Simulator{}).Evaluate(intraBase(t, hot...))
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Saturated {
		t.Fatal("saturation scenario did not saturate serially")
	}
	got, err := (Simulator{}).Evaluate(intraBase(t, append(hot, IntraParallelism(4))...))
	if err != nil {
		t.Fatal(err)
	}
	if gj, want := resultJSON(t, got), resultJSON(t, serial); gj != want {
		t.Errorf("saturated parallel result diverges\n got %s\nwant %s", gj, want)
	}
}

// TestIntraParallelismSpec pins the declarative surface: the JSON field
// round-trips through ParseSpec, canonicalizes to zero (execution
// advice, not content), leaves the Fingerprint unperturbed, and still
// reaches the compiled scenario's configuration.
func TestIntraParallelismSpec(t *testing.T) {
	sp, err := ParseSpec([]byte(`{"intra_parallelism": 4, "rate": 0.004}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp.IntraParallelism != 4 {
		t.Fatalf("parsed intra_parallelism %d, want 4", sp.IntraParallelism)
	}
	if c := sp.Canonical(); c.IntraParallelism != 0 {
		t.Errorf("canonical form keeps intra_parallelism %d", c.IntraParallelism)
	}
	plain := sp
	plain.IntraParallelism = 0
	if sp.Fingerprint() != plain.Fingerprint() {
		t.Error("intra_parallelism perturbs the spec fingerprint")
	}
	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.intraParallelism != 4 {
		t.Errorf("compiled scenario has intraParallelism %d, want 4", s.cfg.intraParallelism)
	}
	// The inverse direction canonicalizes it away, like Parallelism.
	if got := s.Spec(); got.IntraParallelism != 0 {
		t.Errorf("Scenario.Spec() reports intra_parallelism %d", got.IntraParallelism)
	}
	if !reflect.DeepEqual(s.Spec(), plain.Canonical()) {
		t.Errorf("spec round-trip diverges: %+v vs %+v", s.Spec(), plain.Canonical())
	}
	if _, err := ParseSpec([]byte(`{"intra_parallelism": -1}`)); err == nil {
		t.Error("negative intra_parallelism accepted")
	}
}
