package noc

import (
	"encoding/json"
	"math"
	"testing"
)

func TestResultJSONRoundTrip(t *testing.T) {
	r := Result{
		Evaluator: "model",
		Unicast:   41.25,
		Multicast: math.NaN(), // alpha = 0: no multicast latency
		MaxRho:    0.31,
		Converged: true,
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["unicast"] != 41.25 {
		t.Errorf("unicast = %v", m["unicast"])
	}
	if v, present := m["multicast"]; !present || v != nil {
		t.Errorf("NaN multicast should marshal to null, got %v (present=%v)", v, present)
	}

	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Unicast != r.Unicast || !math.IsNaN(back.Multicast) ||
		back.MaxRho != r.MaxRho || !back.Converged || back.Evaluator != "model" {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestResultJSONSaturated(t *testing.T) {
	r := Result{Evaluator: "model", Unicast: math.Inf(1), Multicast: math.Inf(1), Saturated: true}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("Inf latencies must marshal (as null): %v", err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Saturated || !math.IsNaN(back.Unicast) {
		t.Errorf("round trip: %+v", back)
	}
}

func TestSweepResultJSON(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Warmup(500), Measure(5000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(s, SweepOptions{Rates: []float64{0.002}, Evaluators: []Evaluator{Model{}}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["topology"] != "quarc" {
		t.Errorf("topology = %v", m["topology"])
	}
}
