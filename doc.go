// Package quarc reproduces "A Performance Model of Multicast Communication
// in Wormhole-Routed Networks on-Chip" (Moadeli & Vanderbauwhede, IPDPS
// 2009): an analytical model that predicts the average multicast latency of
// wormhole-routed networks with asynchronous multi-port routers, validated
// on the Quarc NoC against a discrete-event simulator.
//
// The public entry point is the noc package: a declarative Scenario built
// from functional options drives both engines through a common Evaluator
// interface, and string-keyed registries of topologies, routers and
// traffic patterns keep new scenarios declarative:
//
//	s, _ := noc.NewScenario(noc.Quarc(64), noc.MsgLen(32),
//		noc.Rate(0.001), noc.Alpha(0.05), noc.RandomDests(8, 1))
//	pred, _ := noc.Model{}.Evaluate(s)
//	meas, _ := noc.Simulator{}.Evaluate(s)
//
// The engines live under internal/:
//
//   - internal/core — the analytical model (M/G/1 channel queues, wormhole
//     service-time fixed point, max-of-exponentials multicast combination)
//   - internal/topology, internal/routing — Quarc, Spidergon, mesh, torus
//     and hypercube networks with their deterministic unicast and BRCP
//     multicast routing
//   - internal/wormhole — the worm-level wormhole network simulator that
//     stands in for the paper's OMNET++ model
//   - internal/traffic, internal/stats — Poisson workloads and estimators
//   - internal/experiments — regeneration of the paper's Figures 6 and 7
//     plus the ablation studies
//
// Command-line entry points are cmd/quarcmodel, cmd/quarcsim, cmd/figures
// and cmd/ablations; runnable walk-throughs live in examples/. All of them
// consume only the noc package. The benchmarks in noc regenerate one
// figure panel or ablation each; see EXPERIMENTS.md for recorded
// paper-vs-measured results and DESIGN.md for the formula notes.
package quarc
