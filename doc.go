// Package quarc reproduces "A Performance Model of Multicast Communication
// in Wormhole-Routed Networks on-Chip" (Moadeli & Vanderbauwhede, IPDPS
// 2009): an analytical model that predicts the average multicast latency of
// wormhole-routed networks with asynchronous multi-port routers, validated
// on the Quarc NoC against a discrete-event simulator.
//
// The library lives under internal/:
//
//   - internal/core — the analytical model (M/G/1 channel queues, wormhole
//     service-time fixed point, max-of-exponentials multicast combination)
//   - internal/topology, internal/routing — Quarc, Spidergon, mesh, torus
//     and hypercube networks with their deterministic unicast and BRCP
//     multicast routing
//   - internal/wormhole — the worm-level wormhole network simulator that
//     stands in for the paper's OMNET++ model
//   - internal/traffic, internal/stats — Poisson workloads and estimators
//   - internal/experiments — regeneration of the paper's Figures 6 and 7
//     plus the ablation studies
//
// Command-line entry points are cmd/quarcmodel, cmd/quarcsim and
// cmd/figures; runnable walk-throughs live in examples/. The benchmarks in
// bench_test.go regenerate one figure panel or ablation each; see
// EXPERIMENTS.md for recorded paper-vs-measured results.
package quarc
